/**
 * @file
 * Bridges the real codecs to the simulation's per-function compression
 * parameters.
 *
 * Compression *ratios* are measured, not assumed: for each distinct
 * compressibility value the model synthesizes a 1 MiB reference image
 * and runs the actual codec on it once, caching the achieved ratio.
 * Latency is derived from the image size and a codec throughput model
 * whose reference constants were calibrated with `bench/micro_codec` on
 * the development machine; using constants (rather than re-timing inside
 * every simulation) keeps simulated results deterministic across hosts.
 */
#pragma once

#include <map>
#include <memory>

#include "compress/codec.hpp"
#include "trace/function_catalog.hpp"
#include "trace/workload.hpp"

namespace codecrunch::trace {

/**
 * Codec throughput constants (MB/s) used to convert image sizes into
 * simulated compression/decompression seconds.
 */
struct CodecSpeed {
    double compressMbps = 180.0;
    double decompressMbps = 700.0;
};

/**
 * Snapshot-path throughput/overhead constants used to convert snapshot
 * image sizes into simulated restore/creation seconds (vHive/REAP-style
 * model: sequential snapshot load, then demand-prefetch of the recorded
 * working set, discounted by the warm-page cache hit fraction).
 */
struct SnapshotSpeed {
    /** Sequential snapshot-file load throughput (MB/s). */
    double loadMbps = 800.0;
    /** Working-set page prefetch throughput (MB/s, random-access). */
    double prefetchMbps = 200.0;
    /** Background snapshot-file write throughput (MB/s). */
    double createMbps = 400.0;
    /** Fixed VMM setup + device restore overhead (seconds). */
    Seconds fixedRestoreSeconds = 0.18;
    /**
     * Fraction of working-set pages already resident in the host page
     * cache at restore time (REAP's record-and-prefetch hit rate).
     */
    double warmPageHitFraction = 0.35;
    /** Snapshot metadata (VM state, device, page map) size (MB). */
    MegaBytes metadataMb = 24.0;
};

/**
 * Per-function compression parameter derivation.
 */
class CompressionModel
{
  public:
    /**
     * @param codec real codec used to measure ratios.
     * @param speed throughput model for latency conversion.
     * @param armSlowdown multiplier applied to ARM-side latencies
     *        (Graviton decompression is mildly slower per core).
     */
    CompressionModel(std::shared_ptr<const compress::Codec> codec,
                     CodecSpeed speed, double armSlowdown = 1.1,
                     SnapshotSpeed snapshotSpeed = SnapshotSpeed{});

    /** Default model: the paper's choice, lz4. */
    static CompressionModel lz4();

    /** Alternative high-ratio model (xz-like), for the trade-off study. */
    static CompressionModel rangeLz();

    /** Model with no compression at all (ratio 1, zero latency). */
    static CompressionModel none();

    /**
     * Measured compression ratio for an image of the given
     * compressibility (cached; one real codec run per distinct value).
     */
    double ratioFor(double compressibility) const;

    /**
     * Fill the compression- and snapshot-related fields of a profile
     * from a catalog archetype: compressedMb, compressRatio,
     * decompress[], compressTime[], snapshotMb, restore[], and
     * snapshotCreate[]. Purely deterministic — no RNG is consumed, so
     * adding fields here never perturbs trace-generation streams.
     */
    void apply(const CatalogEntry& entry, FunctionProfile& profile) const;

    /** Codec backing this model (never null). */
    const compress::Codec& codec() const { return *codec_; }

    const CodecSpeed& speed() const { return speed_; }

    const SnapshotSpeed& snapshotSpeed() const { return snapshotSpeed_; }

  private:
    std::shared_ptr<const compress::Codec> codec_;
    CodecSpeed speed_;
    double armSlowdown_;
    SnapshotSpeed snapshotSpeed_;
    mutable std::map<long long, double> ratioCache_;
};

} // namespace codecrunch::trace
