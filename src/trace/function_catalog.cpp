#include "trace/function_catalog.hpp"

#include <cmath>

namespace codecrunch::trace {

namespace {

/**
 * Archetype pool. Parameters are calibrated so the population-level
 * statistics the paper reports emerge:
 *  - 9/24 (38%) archetypes run faster on ARM (armRatio < 1), Fig. 2;
 *  - with the lz4 codec's measured throughput, decompression + image
 *    registration beats the cold start for ~46% of archetypes on x86
 *    and slightly more on ARM (Fig. 1(c) reports 42% / 46%);
 *  - mean cold start is ~43% of mean execution time (intro: 40-75%);
 *  - unfavorable archetypes pay up to ~1.75x their cold-start time for
 *    a compressed start, matching the paper's worst case;
 *  - working-set fractions span the 15-60% range the REAP measurements
 *    report: interpreter-heavy functions touch most of their footprint
 *    at init, large ML/analytics footprints fault in a small fraction.
 */
const std::vector<CatalogEntry> kEntries = {
    // name                        memMB  imgMB  execX86 armR  csX86 csArm  compr  reg   wset
    {"sebs/dynamic-html",           128,    60,   0.25, 0.92,  2.70,  3.24,  0.85,  0.14, 0.55},
    {"sebs/uploader",               128,    80,   0.80, 1.02,  2.88,  3.60,  0.80,  0.18, 0.50},
    {"sebs/thumbnailer",            256,   180,   1.80, 1.15,  5.04,  6.12,  0.60,  0.22, 0.45},
    {"sebs/video-processing",       512,   420,  22.00, 1.25, 11.70, 12.87,  0.45, 12.60, 0.35},
    {"sebs/compression",            256,   150,   5.50, 1.10,  3.96,  4.86,  0.70,  0.18, 0.40},
    {"sebs/image-recognition",     1024,   900,   3.20, 1.30, 16.20, 18.00,  0.35,  0.54, 0.30},
    {"sebs/graph-pagerank",         512,   220,   4.50, 0.85,  5.40,  6.48,  0.65,  0.27, 0.45},
    {"sebs/graph-mst",              512,   220,   3.80, 0.88,  5.40,  5.94,  0.65,  7.20, 0.45},
    {"sebs/graph-bfs",              512,   220,   2.90, 0.86,  5.40,  5.94,  0.65,  5.76, 0.45},
    {"sebs/dna-visualization",     2048,   640,   9.50, 1.20,  7.56,  8.32,  0.50,  8.10, 0.20},
    {"sebs/crawler",                256,   130,   1.40, 1.04,  3.60,  4.32,  0.75,  0.18, 0.50},
    {"slsbench/alu",                128,    45,   0.40, 0.82,  1.62,  1.98,  0.80,  0.09, 0.60},
    {"slsbench/matmul",             512,   160,   6.80, 1.35,  2.52,  3.06,  0.55,  0.22, 0.40},
    {"slsbench/base64",             128,    45,   0.30, 0.90,  1.62,  1.98,  0.80,  0.09, 0.60},
    {"slsbench/json-serde",         256,   520,   1.10, 1.03,  1.98,  2.43,  0.50,  0.99, 0.50},
    {"slsbench/http-serving",       128,    70,   0.15, 1.06,  2.34,  2.88,  0.85,  0.11, 0.55},
    {"slsbench/ml-training",       3008,  1500,  28.00, 1.40,  6.30,  6.93,  0.30,  4.50, 0.15},
    {"slsbench/ml-inference",      2048,  1800,   2.50, 1.28,  3.24,  3.56,  0.25,  0.90, 0.25},
    {"slsbench/video-streaming",   1024,  1200,   4.20, 1.18,  2.70,  2.97,  0.40,  0.36, 0.20},
    {"slsbench/kv-store",           512,   950,   0.90, 0.87,  2.16,  2.79,  0.45,  0.18, 0.35},
    {"slsbench/image-resize",       256,   780,   0.90, 1.07,  1.80,  1.98,  0.55,  0.14, 0.45},
    {"slsbench/stream-analytics",   512,   850,   7.50, 0.78,  1.98,  2.18,  0.50,  0.27, 0.30},
    {"slsbench/online-compiling",  1024,  1400,  12.00, 1.05,  3.06,  3.37,  0.60,  0.18, 0.25},
    {"sebs/data-analytics",        1024,  1100,  15.00, 0.90,  2.34,  2.57,  0.55,  0.18, 0.20},
};

} // namespace

const std::vector<CatalogEntry>&
FunctionCatalog::entries()
{
    return kEntries;
}

std::size_t
FunctionCatalog::nearest(Seconds execSeconds, MegaBytes memoryMb)
{
    std::size_t best = 0;
    double bestDist = 1e300;
    const double logExec = std::log(std::max(execSeconds, 1e-3));
    const double logMem = std::log(std::max(memoryMb, 1.0));
    for (std::size_t i = 0; i < kEntries.size(); ++i) {
        const auto& e = kEntries[i];
        const double de = logExec - std::log(e.execX86);
        const double dm = logMem - std::log(e.memoryMb);
        const double dist = de * de + dm * dm;
        if (dist < bestDist) {
            bestDist = dist;
            best = i;
        }
    }
    return best;
}

} // namespace codecrunch::trace
