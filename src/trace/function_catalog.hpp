/**
 * @file
 * Catalog of serverless function archetypes.
 *
 * The paper executes the SeBS and ServerlessBench suites and maps every
 * Azure-trace function to the nearest benchmark by execution time and
 * memory. This catalog reproduces that pool: 24 archetypes covering the
 * suites' workload classes (image/video processing, linear algebra, data
 * analytics, stream processing, online compilation, web serving, ML
 * inference, graph algorithms, ...), each with the externally visible
 * parameters the policies consume:
 *
 *  - container memory footprint and image size;
 *  - nominal x86 execution time and an ARM time ratio (about 38% of the
 *    archetypes run faster on ARM, per Fig. 2);
 *  - cold-start time per architecture;
 *  - image compressibility, which determines (via the real codecs) the
 *    compression ratio and decompression latency, and therefore whether
 *    the function is compression-favorable (Fig. 1(c)).
 */
#pragma once

#include <string>
#include <vector>

#include "common/types.hpp"

namespace codecrunch::trace {

/**
 * One benchmark archetype from the SeBS / ServerlessBench pool.
 */
struct CatalogEntry {
    /** Benchmark name, e.g. "sebs/thumbnailer". */
    std::string name;
    /** Container memory footprint (MB) while running or warm. */
    MegaBytes memoryMb;
    /** Container image size (MB); input to compression. */
    double imageMb;
    /** Nominal execution time on x86 (seconds). */
    Seconds execX86;
    /**
     * ARM execution time ratio: execArm = execX86 * armRatio.
     * Values below 1 mean the function is faster on ARM.
     */
    double armRatio;
    /** Cold-start time on x86 (seconds): download + install + boot. */
    Seconds coldStartX86;
    /** Cold-start time on ARM (seconds). */
    Seconds coldStartArm;
    /** Image compressibility in [0, 1] (see compress::ImageSpec). */
    double compressibility;
    /**
     * Fixed overhead of a compressed warm start besides raw
     * decompression: registering the decompressed image with the
     * container runtime (docker build) and starting the container
     * (docker run). Varies with image layer structure.
     */
    Seconds registerSeconds;
    /**
     * Fraction of the memory footprint that is hot working set: the
     * pages a restored snapshot must fault in before the function can
     * serve (vHive/REAP record-and-prefetch measurements put this at
     * 15-60% depending on runtime and initialization heaviness).
     * Determines the snapshot image size and restore prefetch cost.
     */
    double workingSetFraction;
};

/**
 * The benchmark pool.
 */
class FunctionCatalog
{
  public:
    /** The built-in SeBS + ServerlessBench archetype pool. */
    static const std::vector<CatalogEntry>& entries();

    /**
     * Index of the entry whose (execution time, memory) is nearest to
     * the given targets — the paper's Azure-to-benchmark mapping rule.
     * Distance is measured in log space so that seconds-vs-minutes and
     * 128MB-vs-3GB differences weigh comparably.
     */
    static std::size_t
    nearest(Seconds execSeconds, MegaBytes memoryMb);
};

} // namespace codecrunch::trace
