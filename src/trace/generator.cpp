#include "trace/generator.hpp"

#include <algorithm>
#include <cmath>

#include "common/rng.hpp"

namespace codecrunch::trace {

namespace {

/** Invocation pattern archetypes observed in the Azure trace. */
enum class Pattern { Periodic, Poisson, Bursty };

/** Per-function generation plan. */
struct FunctionPlan {
    Pattern pattern = Pattern::Poisson;
    /** Popularity weight (Zipf). */
    double weight = 1.0;
    /** Periodic: nominal period in seconds. */
    Seconds period = 600.0;
    /** Periodic: time at which the period changes (<0: never). */
    Seconds periodChangeTime = -1.0;
    /** Periodic: multiplier applied to the period at the change. */
    double periodChangeScale = 1.0;
    /** Poisson/bursty: base rate (1/s). */
    double rate = 0.001;
    /** Bursty: mean burst length (s) and mean gap (s). */
    Seconds burstLen = 1200.0;
    Seconds burstGap = 10800.0;
    /** Whether this function's input changes at config.inputChangeTime. */
    bool inputChanges = false;
};

double
diurnal(Seconds t, double amplitude)
{
    // Peak in the middle of each simulated day.
    const double phase =
        2.0 * M_PI * (t / (24.0 * kSecondsPerHour) - 0.25);
    return 1.0 + amplitude * std::sin(phase);
}

double
peakMultiplier(Seconds t, const std::vector<PeakWindow>& peaks)
{
    double m = 1.0;
    for (const auto& p : peaks) {
        const Seconds start = p.startHour * kSecondsPerHour;
        const Seconds end = start + p.hours * kSecondsPerHour;
        if (t >= start && t < end)
            m = std::max(m, p.multiplier);
    }
    return m;
}

std::vector<PeakWindow>
defaultPeaks(double days)
{
    // Two busy windows per day: late morning and evening.
    std::vector<PeakWindow> peaks;
    for (int day = 0; day < static_cast<int>(std::ceil(days)); ++day) {
        peaks.push_back({day * 24.0 + 10.0, 1.5, 4.0});
        peaks.push_back({day * 24.0 + 19.0, 1.0, 3.0});
    }
    return peaks;
}

/** Generate one Poisson-process segment via exponential gaps. */
void
emitPoisson(std::vector<Invocation>& out, FunctionId id, Rng& rng,
            double rate, Seconds from, Seconds to,
            const std::vector<PeakWindow>& peaks, double diurnalAmp)
{
    if (rate <= 0.0)
        return;
    // Thinning: draw from the max modulated rate, accept with the
    // time-dependent probability.
    double maxMult = 1.0 + diurnalAmp;
    for (const auto& p : peaks)
        maxMult = std::max(maxMult, (1.0 + diurnalAmp) * p.multiplier);
    const double maxRate = rate * maxMult;
    Seconds t = from + rng.exponential(maxRate);
    while (t < to) {
        const double actual = rate * diurnal(t, diurnalAmp) *
                              peakMultiplier(t, peaks);
        if (rng.uniform() < actual / maxRate)
            out.push_back({id, t, 1.0});
        t += rng.exponential(maxRate);
    }
}

} // namespace

std::vector<FunctionProfile>
TraceGenerator::makeFunctions(const TraceConfig& config,
                              const CompressionModel& model)
{
    Rng rng(config.seed);
    const auto& catalog = FunctionCatalog::entries();
    std::vector<FunctionProfile> functions;
    functions.reserve(config.numFunctions);

    for (std::size_t i = 0; i < config.numFunctions; ++i) {
        // Azure functions skew short: draw a target execution time from
        // a lognormal (median ~2 s, long tail to minutes) and a memory
        // target, then map to the nearest archetype like the paper does.
        const double targetExec = rng.logNormal(std::log(2.0), 1.2);
        const double targetMem =
            std::exp(rng.uniform(std::log(128.0), std::log(3008.0)));
        const std::size_t idx =
            FunctionCatalog::nearest(targetExec, targetMem);
        const CatalogEntry& entry = catalog[idx];

        FunctionProfile profile;
        profile.id = static_cast<FunctionId>(i);
        profile.name =
            "fn-" + std::to_string(i) + "(" + entry.name + ")";
        profile.catalogIndex = idx;
        profile.memoryMb = entry.memoryMb;
        profile.imageMb = entry.imageMb;
        // Small per-function perturbation so two functions mapped to
        // the same archetype are not bit-identical.
        const double execJitter = rng.uniform(0.9, 1.1);
        profile.exec[static_cast<int>(NodeType::X86)] =
            entry.execX86 * execJitter;
        profile.exec[static_cast<int>(NodeType::ARM)] =
            entry.execX86 * entry.armRatio * execJitter;
        profile.coldStart[static_cast<int>(NodeType::X86)] =
            entry.coldStartX86 * rng.uniform(0.95, 1.05);
        profile.coldStart[static_cast<int>(NodeType::ARM)] =
            entry.coldStartArm * rng.uniform(0.95, 1.05);
        profile.compressibility = entry.compressibility;
        model.apply(entry, profile);
        functions.push_back(std::move(profile));
    }
    return functions;
}

Workload
TraceGenerator::generate(const TraceConfig& config,
                         const CompressionModel& model)
{
    Workload workload;
    workload.duration = config.days * 24.0 * kSecondsPerHour;
    workload.functions = makeFunctions(config, model);

    Rng rng(config.seed ^ 0x7ace5eedull);
    const auto peaks = (config.peaks.empty() && config.defaultPeaks)
        ? defaultPeaks(config.days)
        : config.peaks;

    // --- Build per-function plans -----------------------------------
    const auto zipfCdf =
        Rng::makeZipfCdf(config.numFunctions, config.zipfExponent);
    std::vector<double> weights(config.numFunctions);
    {
        // Zipf weight by a random rank permutation: popularity is
        // uncorrelated with the archetype.
        std::vector<std::size_t> ranks(config.numFunctions);
        for (std::size_t i = 0; i < ranks.size(); ++i)
            ranks[i] = i;
        rng.shuffle(ranks);
        for (std::size_t i = 0; i < ranks.size(); ++i) {
            const double mass = ranks[i] == 0
                ? zipfCdf[0]
                : zipfCdf[ranks[i]] - zipfCdf[ranks[i] - 1];
            weights[i] = mass;
        }
    }

    std::vector<FunctionPlan> plans(config.numFunctions);
    double rateMass = 0.0; // total weight of rate-driven functions
    for (std::size_t i = 0; i < plans.size(); ++i) {
        FunctionPlan& plan = plans[i];
        plan.weight = weights[i];
        const double u = rng.uniform();
        if (u < config.periodicFraction) {
            plan.pattern = Pattern::Periodic;
            // Log-uniform periods between 2 minutes and 6 hours.
            plan.period = std::exp(
                rng.uniform(std::log(120.0), std::log(6.0 * 3600.0)));
            if (rng.bernoulli(0.3)) {
                plan.periodChangeTime =
                    rng.uniform(0.3, 0.7) * workload.duration;
                plan.periodChangeScale =
                    rng.bernoulli(0.5) ? 0.5 : 2.0;
            }
        } else if (u < config.periodicFraction + config.poissonFraction) {
            plan.pattern = Pattern::Poisson;
            rateMass += plan.weight;
        } else {
            plan.pattern = Pattern::Bursty;
            plan.burstLen = rng.uniform(600.0, 2400.0);
            plan.burstGap = rng.uniform(3600.0, 6.0 * 3600.0);
            rateMass += plan.weight;
        }
        plan.inputChanges =
            config.inputChangeTime >= 0.0 &&
            rng.bernoulli(config.inputChangeFraction);
    }

    // Scale Poisson/bursty rates so the whole trace averages the target
    // arrival rate (periodic functions contribute 1/period each).
    double periodicRate = 0.0;
    for (const auto& plan : plans) {
        if (plan.pattern == Pattern::Periodic)
            periodicRate += 1.0 / plan.period;
    }
    const double rateBudget = std::max(
        0.0, config.targetMeanRatePerSecond - periodicRate);
    for (auto& plan : plans) {
        if (plan.pattern == Pattern::Poisson) {
            plan.rate = rateBudget * plan.weight / std::max(rateMass,
                                                            1e-12);
        } else if (plan.pattern == Pattern::Bursty) {
            // Same average mass, concentrated into bursts.
            const double duty =
                plan.burstLen / (plan.burstLen + plan.burstGap);
            plan.rate = rateBudget * plan.weight /
                        std::max(rateMass, 1e-12) /
                        std::max(duty, 1e-3);
        }
    }

    // --- Emit invocations --------------------------------------------
    auto& out = workload.invocations;
    for (std::size_t i = 0; i < plans.size(); ++i) {
        const FunctionPlan& plan = plans[i];
        const FunctionId id = static_cast<FunctionId>(i);
        Rng functionRng = rng.fork();
        switch (plan.pattern) {
          case Pattern::Periodic: {
            Seconds period = plan.period;
            Seconds t = functionRng.uniform(0.0, period);
            bool changed = false;
            while (t < workload.duration) {
                out.push_back({id, t, 1.0});
                if (!changed && plan.periodChangeTime >= 0.0 &&
                    t >= plan.periodChangeTime) {
                    period *= plan.periodChangeScale;
                    changed = true;
                }
                const Seconds jitter =
                    functionRng.normal(0.0, 0.08 * period);
                t += std::max(1.0, period + jitter);
            }
            break;
          }
          case Pattern::Poisson:
            emitPoisson(out, id, functionRng, plan.rate, 0.0,
                        workload.duration, peaks,
                        config.diurnalAmplitude);
            break;
          case Pattern::Bursty: {
            Seconds t = functionRng.exponential(1.0 / plan.burstGap);
            while (t < workload.duration) {
                const Seconds len =
                    functionRng.exponential(1.0 / plan.burstLen);
                emitPoisson(out, id, functionRng, plan.rate, t,
                            std::min(t + len, workload.duration), peaks,
                            config.diurnalAmplitude);
                t += len + functionRng.exponential(1.0 / plan.burstGap);
            }
            break;
          }
        }
    }

    // Input change (Fig. 15): rescale affected invocations' inputScale
    // after the change point.
    if (config.inputChangeTime >= 0.0) {
        for (auto& inv : out) {
            if (inv.arrival >= config.inputChangeTime &&
                plans[inv.function].inputChanges) {
                inv.inputScale = config.inputChangeScale;
            }
        }
    }

    std::sort(out.begin(), out.end(),
              [](const Invocation& a, const Invocation& b) {
                  if (a.arrival != b.arrival)
                      return a.arrival < b.arrival;
                  return a.function < b.function;
              });
    return workload;
}

} // namespace codecrunch::trace
