/**
 * @file
 * Azure-calibrated synthetic workload generator.
 *
 * The paper replays a two-week Microsoft Azure Functions production
 * trace (200k+ functions, per-minute sampling). That dataset is not
 * shippable here, so this generator reproduces its published
 * characteristics instead:
 *
 *  - heavy-tailed (Zipf) popularity: a few functions dominate traffic;
 *  - a mix of invocation patterns: quasi-periodic functions (with
 *    occasional period changes and multiple frequencies), Poisson
 *    background traffic, and bursty on/off functions;
 *  - diurnal load modulation plus explicit peak-load windows, which
 *    create the high-memory-pressure episodes Figs. 1, 10 and 11 shade;
 *  - per-function execution-time and memory parameters drawn by mapping
 *    each function to the nearest benchmark archetype, exactly as the
 *    paper maps Azure functions onto SeBS/ServerlessBench functions.
 *
 * Generation is fully deterministic given the seed.
 */
#pragma once

#include <vector>

#include "trace/compression_model.hpp"
#include "trace/workload.hpp"

namespace codecrunch::trace {

/** A window of elevated load (the shaded regions in Figs. 1/10/11). */
struct PeakWindow {
    /** Window start, in hours from trace begin. */
    double startHour = 0.0;
    /** Window length in hours. */
    double hours = 1.0;
    /** Rate multiplier applied to rate-driven functions. */
    double multiplier = 4.0;
};

/**
 * Generator configuration.
 */
struct TraceConfig {
    /** Number of unique functions. */
    std::size_t numFunctions = 300;
    /** Trace length in days. */
    double days = 1.5;
    /** Master seed; everything derives from it. */
    std::uint64_t seed = 42;

    /** Zipf exponent of the popularity distribution. */
    double zipfExponent = 1.05;
    /** Mean background arrival rate across the whole trace (1/s). */
    double targetMeanRatePerSecond = 3.0;

    /** Fraction of functions with quasi-periodic invocation patterns. */
    double periodicFraction = 0.45;
    /** Fraction of functions with Poisson patterns (rest are bursty). */
    double poissonFraction = 0.35;

    /** Amplitude of the sinusoidal diurnal modulation in [0, 1). */
    double diurnalAmplitude = 0.5;

    /** Explicit high-load windows; empty = defaults (two per day). */
    std::vector<PeakWindow> peaks;
    /** Use the default peak windows when `peaks` is empty. */
    bool defaultPeaks = true;

    /**
     * Time (seconds) at which function inputs change (Fig. 15): the
     * execution time of affected functions is rescaled from this point
     * on. Negative = no change.
     */
    Seconds inputChangeTime = -1.0;
    /** Fraction of functions whose input changes. */
    double inputChangeFraction = 0.3;
    /** Execution-time multiplier after the input change. */
    double inputChangeScale = 1.6;

    /** Per-invocation execution-time noise (lognormal sigma). */
    double execNoiseSigma = 0.08;
};

/**
 * Builds Workloads from a TraceConfig.
 */
class TraceGenerator
{
  public:
    /**
     * Generate a workload; compression fields are filled from the given
     * model (default: measured lz4).
     */
    static Workload
    generate(const TraceConfig& config,
             const CompressionModel& model = CompressionModel::lz4());

    /**
     * Build only the function profiles (no invocations) — used by unit
     * tests and the optimizer micro-benchmarks.
     */
    static std::vector<FunctionProfile>
    makeFunctions(const TraceConfig& config,
                  const CompressionModel& model);
};

} // namespace codecrunch::trace
