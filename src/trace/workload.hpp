/**
 * @file
 * Workload types: the per-function runtime profile visible to schedulers
 * and the full invocation workload a simulation consumes.
 */
#pragma once

#include <string>
#include <vector>

#include "common/types.hpp"

namespace codecrunch::trace {

/**
 * Externally visible runtime profile of one serverless function.
 *
 * Everything here is measurable by the provider after a handful of
 * executions (the paper's controller records service times per
 * architecture and compression state), so policies may legitimately
 * consume it. Future invocation times are NOT part of the profile; only
 * the Oracle policy sees those.
 */
struct FunctionProfile {
    FunctionId id = kInvalidFunction;
    /** Trace-level name, e.g. "fn-0042(sebs/thumbnailer)". */
    std::string name;
    /** Index of the catalog archetype backing this function. */
    std::size_t catalogIndex = 0;

    /** Warm/running container memory footprint (MB). */
    MegaBytes memoryMb = 128;
    /** Container image size (MB). */
    double imageMb = 64;
    /** Compressed image size (MB) under the configured codec. */
    MegaBytes compressedMb = 64;
    /** Achieved compression ratio (imageMb / compressedMb). */
    double compressRatio = 1.0;

    /** Nominal execution seconds, indexed by NodeType. */
    Seconds exec[kNumNodeTypes] = {1.0, 1.0};
    /** Cold-start seconds, indexed by NodeType. */
    Seconds coldStart[kNumNodeTypes] = {1.0, 1.0};
    /**
     * Compressed-warm-start overhead (decompression + image
     * registration + container start), indexed by NodeType.
     */
    Seconds decompress[kNumNodeTypes] = {0.1, 0.1};
    /** Background compression seconds, indexed by NodeType. */
    Seconds compressTime[kNumNodeTypes] = {0.5, 0.5};

    /** Image compressibility in [0, 1]. */
    double compressibility = 0.5;

    /** Snapshot image size on disk (MB): working set + VM metadata. */
    MegaBytes snapshotMb = 0;
    /**
     * Snapshot-restore seconds, indexed by NodeType: snapshot load plus
     * prefetch of the working-set pages missed by the warm-page cache
     * (vHive/REAP-style), plus fixed restore overhead.
     */
    Seconds restore[kNumNodeTypes] = {0.0, 0.0};
    /** Background snapshot-creation seconds, indexed by NodeType. */
    Seconds snapshotCreate[kNumNodeTypes] = {0.0, 0.0};
    /** Fraction of the memory footprint that is hot working set. */
    double workingSetFraction = 0.0;

    /** Execution seconds for a given architecture and input scale. */
    Seconds
    execTime(NodeType type, double inputScale = 1.0) const
    {
        return exec[static_cast<int>(type)] * inputScale;
    }

    /** True if a compressed start beats a cold start on `type`. */
    bool
    compressionFavorable(NodeType type) const
    {
        return decompress[static_cast<int>(type)] <
               coldStart[static_cast<int>(type)];
    }

    /** True if a snapshot restore beats a cold start on `type`. */
    bool
    snapshotFavorable(NodeType type) const
    {
        return snapshotMb > 0 &&
               restore[static_cast<int>(type)] <
                   coldStart[static_cast<int>(type)];
    }

    /** Faster architecture for this function's execution. */
    NodeType
    fasterArch() const
    {
        return exec[0] <= exec[1] ? NodeType::X86 : NodeType::ARM;
    }
};

/**
 * A complete simulation workload: function profiles plus the invocation
 * stream, sorted by arrival time.
 */
struct Workload {
    std::vector<FunctionProfile> functions;
    std::vector<Invocation> invocations;
    /** Total trace duration in seconds. */
    Seconds duration = 0.0;

    /** Profile lookup by id (ids are dense, 0..n-1). */
    const FunctionProfile&
    profile(FunctionId id) const
    {
        return functions[id];
    }
};

} // namespace codecrunch::trace
