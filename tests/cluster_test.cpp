/**
 * @file
 * Cluster state-machine tests: node construction and pricing, execution
 * resource accounting, the warm-container pool, the keep-alive memory
 * reservation, and cost accrual arithmetic.
 */
#include <gtest/gtest.h>

#include "cluster/cluster.hpp"

using namespace codecrunch;
using namespace codecrunch::cluster;

namespace {

ClusterConfig
tinyConfig()
{
    ClusterConfig config;
    config.numX86 = 2;
    config.numArm = 1;
    config.coresPerNode = 2;
    config.memoryPerNodeMb = 1000;
    config.keepAliveMemoryFraction = 0.5;
    return config;
}

} // namespace

TEST(Cluster, ConstructsPaperDefaultFleet)
{
    Cluster cluster{ClusterConfig{}};
    EXPECT_EQ(cluster.nodes().size(), 31u);
    int x86 = 0, arm = 0;
    for (const auto& node : cluster.nodes()) {
        (node.type == NodeType::X86 ? x86 : arm) += 1;
        EXPECT_EQ(node.cores, 8);
        EXPECT_DOUBLE_EQ(node.memoryMb, 32 * 1024);
    }
    EXPECT_EQ(x86, 13);
    EXPECT_EQ(arm, 18);
}

TEST(Cluster, CostRatesFollowNodePricing)
{
    Cluster cluster{ClusterConfig{}};
    // $0.384/h over 32 GiB: keeping all memory warm for an hour costs
    // the node's hourly price.
    EXPECT_NEAR(cluster.costRate(NodeType::X86) * 32 * 1024 * 3600,
                0.384, 1e-9);
    EXPECT_NEAR(cluster.costRate(NodeType::ARM) * 32 * 1024 * 3600,
                0.2688, 1e-9);
    EXPECT_LT(cluster.costRate(NodeType::ARM),
              cluster.costRate(NodeType::X86));
}

TEST(Cluster, RejectsEmptyFleet)
{
    ClusterConfig config;
    config.numX86 = 0;
    config.numArm = 0;
    EXPECT_DEATH({ Cluster cluster(config); }, "at least one node");
}

TEST(Cluster, ReserveAndReleaseExec)
{
    Cluster cluster(tinyConfig());
    cluster.reserveExec(0, 400);
    EXPECT_EQ(cluster.node(0).coresUsed, 1);
    EXPECT_DOUBLE_EQ(cluster.node(0).execMemoryMb, 400);
    EXPECT_DOUBLE_EQ(cluster.node(0).freeMemoryMb(), 600);
    cluster.releaseExec(0, 400);
    EXPECT_EQ(cluster.node(0).coresUsed, 0);
    EXPECT_DOUBLE_EQ(cluster.node(0).freeMemoryMb(), 1000);
}

TEST(Cluster, ReserveExecPanicsWithoutCores)
{
    Cluster cluster(tinyConfig());
    cluster.reserveExec(0, 100);
    cluster.reserveExec(0, 100);
    EXPECT_DEATH(cluster.reserveExec(0, 100), "free core");
}

TEST(Cluster, ReserveExecPanicsOnOvercommit)
{
    Cluster cluster(tinyConfig());
    EXPECT_DEATH(cluster.reserveExec(0, 1500), "overcommit");
}

TEST(Cluster, ReleaseExecPanicsWhenIdle)
{
    Cluster cluster(tinyConfig());
    EXPECT_DEATH(cluster.releaseExec(0, 10), "idle");
}

TEST(Cluster, PickNodeForExecPrefersMostFreeMemory)
{
    Cluster cluster(tinyConfig());
    cluster.reserveExec(0, 600);
    const auto node = cluster.pickNodeForExec(NodeType::X86, 100);
    ASSERT_TRUE(node.has_value());
    EXPECT_EQ(*node, 1u); // node 1 has more free memory
}

TEST(Cluster, PickNodeForExecRespectsType)
{
    Cluster cluster(tinyConfig());
    const auto arm = cluster.pickNodeForExec(NodeType::ARM, 100);
    ASSERT_TRUE(arm.has_value());
    EXPECT_EQ(cluster.node(*arm).type, NodeType::ARM);
}

TEST(Cluster, PickNodeForExecFailsWhenFull)
{
    Cluster cluster(tinyConfig());
    // Saturate both x86 nodes' cores.
    for (NodeId n : {0u, 1u}) {
        cluster.reserveExec(n, 10);
        cluster.reserveExec(n, 10);
    }
    EXPECT_FALSE(cluster.pickNodeForExec(NodeType::X86, 10).has_value());
}

TEST(Cluster, WarmPoolLifecycle)
{
    Cluster cluster(tinyConfig());
    const ContainerId id = cluster.addWarm(0, 7, 300, false, 0.0);
    EXPECT_EQ(cluster.warmCount(7), 1u);
    EXPECT_DOUBLE_EQ(cluster.node(0).warmMemoryMb, 300);
    ASSERT_TRUE(cluster.findWarm(7).has_value());
    EXPECT_EQ(*cluster.findWarm(7), id);
    EXPECT_FALSE(cluster.findWarm(8).has_value());

    const WarmContainer removed = cluster.removeWarm(id, 10.0);
    EXPECT_EQ(removed.function, 7u);
    EXPECT_EQ(cluster.warmCount(7), 0u);
    EXPECT_DOUBLE_EQ(cluster.node(0).warmMemoryMb, 0);
}

TEST(Cluster, FindWarmPrefersUncompressed)
{
    Cluster cluster(tinyConfig());
    const ContainerId packed = cluster.addWarm(0, 7, 100, true, 0.0);
    const ContainerId plain = cluster.addWarm(0, 7, 300, false, 0.0);
    EXPECT_EQ(*cluster.findWarm(7), plain);
    cluster.removeWarm(plain, 1.0);
    EXPECT_EQ(*cluster.findWarm(7), packed);
}

TEST(Cluster, WarmHeadroomHonorsFraction)
{
    Cluster cluster(tinyConfig()); // 1000 MB node, 50% warm cap
    EXPECT_DOUBLE_EQ(cluster.warmHeadroomMb(0), 500);
    cluster.addWarm(0, 1, 300, false, 0.0);
    EXPECT_DOUBLE_EQ(cluster.warmHeadroomMb(0), 200);
    // Exec memory can shrink headroom below the cap remainder.
    cluster.reserveExec(0, 600);
    EXPECT_DOUBLE_EQ(cluster.warmHeadroomMb(0), 100);
}

TEST(Cluster, AddWarmPanicsBeyondHeadroom)
{
    Cluster cluster(tinyConfig());
    cluster.addWarm(0, 1, 500, false, 0.0);
    EXPECT_DEATH(cluster.addWarm(0, 2, 1, false, 0.0), "headroom");
}

TEST(Cluster, PickNodeForWarmHonorsCap)
{
    Cluster cluster(tinyConfig());
    cluster.addWarm(0, 1, 500, false, 0.0);
    cluster.addWarm(1, 2, 400, false, 0.0);
    const auto node = cluster.pickNodeForWarm(NodeType::X86, 150);
    EXPECT_FALSE(node.has_value()); // 0 is full, 1 has 100 headroom
    const auto small = cluster.pickNodeForWarm(NodeType::X86, 80);
    ASSERT_TRUE(small.has_value());
    EXPECT_EQ(*small, 1u);
}

TEST(Cluster, ResizeWarmShrinksMemory)
{
    Cluster cluster(tinyConfig());
    const ContainerId id = cluster.addWarm(0, 7, 400, false, 0.0);
    cluster.resizeWarm(id, 150, true, 5.0);
    EXPECT_DOUBLE_EQ(cluster.node(0).warmMemoryMb, 150);
    EXPECT_TRUE(cluster.warm(id).compressed);
}

TEST(Cluster, CostAccrualArithmetic)
{
    Cluster cluster(tinyConfig());
    const double rate = cluster.costRate(NodeType::X86);
    cluster.addWarm(0, 1, 200, false, 0.0);
    cluster.accrueAll(100.0);
    EXPECT_NEAR(cluster.keepAliveSpend(), rate * 200 * 100, 1e-12);
}

TEST(Cluster, CostAccrualAcrossResize)
{
    Cluster cluster(tinyConfig());
    const double rate = cluster.costRate(NodeType::X86);
    const ContainerId id = cluster.addWarm(0, 1, 400, false, 0.0);
    cluster.resizeWarm(id, 100, true, 50.0); // 50 s at 400 MB
    cluster.removeWarm(id, 150.0);           // 100 s at 100 MB
    EXPECT_NEAR(cluster.keepAliveSpend(),
                rate * (400 * 50 + 100 * 100), 1e-12);
}

TEST(Cluster, CostUsesNodeTypeRate)
{
    Cluster cluster(tinyConfig());
    const NodeId armNode = 2; // the single ARM node
    ASSERT_EQ(cluster.node(armNode).type, NodeType::ARM);
    cluster.addWarm(armNode, 1, 200, false, 0.0);
    cluster.accrueAll(60.0);
    EXPECT_NEAR(cluster.keepAliveSpend(),
                cluster.costRate(NodeType::ARM) * 200 * 60, 1e-12);
}

TEST(Cluster, KeepAliveCostHelperMatchesAccrual)
{
    Cluster cluster(tinyConfig());
    cluster.addWarm(0, 1, 333, false, 0.0);
    cluster.accrueAll(77.0);
    EXPECT_NEAR(cluster.keepAliveSpend(),
                cluster.keepAliveCost(NodeType::X86, 333, 77.0),
                1e-12);
}

TEST(Cluster, AccrualIsIdempotentAtSameTime)
{
    Cluster cluster(tinyConfig());
    cluster.addWarm(0, 1, 100, false, 0.0);
    cluster.accrueAll(10.0);
    const Dollars once = cluster.keepAliveSpend();
    cluster.accrueAll(10.0);
    EXPECT_DOUBLE_EQ(cluster.keepAliveSpend(), once);
}

TEST(Cluster, TotalsAggregateAcrossNodes)
{
    Cluster cluster(tinyConfig());
    EXPECT_DOUBLE_EQ(cluster.totalMemoryMb(), 3000);
    cluster.addWarm(0, 1, 100, false, 0.0);
    cluster.addWarm(2, 2, 200, false, 0.0);
    EXPECT_DOUBLE_EQ(cluster.totalWarmMemoryMb(), 300);
}

TEST(Cluster, MultipleWarmContainersPerFunction)
{
    Cluster cluster(tinyConfig());
    cluster.addWarm(0, 7, 100, false, 0.0);
    cluster.addWarm(1, 7, 100, false, 0.0);
    EXPECT_EQ(cluster.warmCount(7), 2u);
    EXPECT_EQ(cluster.warmPool().size(), 2u);
}

TEST(Cluster, ResizeWarmCanGrowWithinCapacity)
{
    Cluster cluster(tinyConfig());
    const ContainerId id = cluster.addWarm(0, 7, 100, true, 0.0);
    cluster.resizeWarm(id, 250, false, 1.0);
    EXPECT_DOUBLE_EQ(cluster.node(0).warmMemoryMb, 250);
    EXPECT_FALSE(cluster.warm(id).compressed);
}

TEST(Cluster, ResizeWarmPanicsOnOvercommit)
{
    Cluster cluster(tinyConfig());
    const ContainerId id = cluster.addWarm(0, 7, 100, true, 0.0);
    cluster.reserveExec(0, 850);
    EXPECT_DEATH(cluster.resizeWarm(id, 300, false, 1.0),
                 "overcommit");
}

TEST(Cluster, WarmPanicsOnUnknownId)
{
    Cluster cluster(tinyConfig());
    EXPECT_DEATH(cluster.warm(42), "unknown");
}

TEST(Cluster, SpendIsMonotonic)
{
    Cluster cluster(tinyConfig());
    cluster.addWarm(0, 1, 100, false, 0.0);
    double last = 0.0;
    for (Seconds t : {10.0, 20.0, 30.0, 40.0}) {
        cluster.accrueAll(t);
        EXPECT_GE(cluster.keepAliveSpend(), last);
        last = cluster.keepAliveSpend();
    }
}

TEST(Cluster, RemoveWarmPanicsOnUnknownId)
{
    Cluster cluster(tinyConfig());
    EXPECT_DEATH(cluster.removeWarm(999, 0.0), "unknown");
}

// --- keep-alive commitment ledger -------------------------------------------

TEST(ClusterLedger, CommitmentChargedUpFrontAndRefundedOnEarlyRemoval)
{
    Cluster cluster(tinyConfig());
    const double rate = cluster.costRate(NodeType::X86);
    // 200 MB committed until t=100.
    const ContainerId id =
        cluster.addWarm(0, 1, 200, false, 0.0, 100.0);
    const Dollars committed = rate * 200 * 100;
    EXPECT_NEAR(cluster.committedDollarsTotal(), committed, 1e-12);
    EXPECT_NEAR(cluster.outstandingCommitmentDollars(), committed,
                1e-12);

    // Evicted at t=40 (the crash case): 40 s were consumed, the
    // remaining 60 s come back as a refund.
    const WarmContainer removed = cluster.removeWarm(id, 40.0);
    EXPECT_NEAR(removed.unspentCommitmentDollars(), rate * 200 * 60,
                1e-12);
    EXPECT_NEAR(cluster.refundedDollarsTotal(), rate * 200 * 60,
                1e-12);
    EXPECT_NEAR(cluster.commitmentConsumedDollars(), rate * 200 * 40,
                1e-12);
    EXPECT_NEAR(cluster.outstandingCommitmentDollars(), 0.0, 1e-12);
}

TEST(ClusterLedger, RemovalAtExpiryRefundsNothing)
{
    Cluster cluster(tinyConfig());
    const double rate = cluster.costRate(NodeType::X86);
    const ContainerId id =
        cluster.addWarm(0, 1, 200, false, 0.0, 100.0);
    const WarmContainer removed = cluster.removeWarm(id, 100.0);
    EXPECT_NEAR(removed.unspentCommitmentDollars(), 0.0, 1e-12);
    EXPECT_NEAR(cluster.refundedDollarsTotal(), 0.0, 1e-12);
    EXPECT_NEAR(cluster.commitmentConsumedDollars(), rate * 200 * 100,
                1e-12);
}

TEST(ClusterLedger, RecommitReanchorsTheWindow)
{
    Cluster cluster(tinyConfig());
    const double rate = cluster.costRate(NodeType::X86);
    const ContainerId id =
        cluster.addWarm(0, 1, 200, false, 0.0, 100.0);
    // Keep-alive extended at t=40: the new commitment covers what was
    // already accrued plus the re-anchored remainder to t=300.
    cluster.recommitWarm(id, 300.0, 40.0);
    EXPECT_NEAR(cluster.committedDollarsTotal(), rate * 200 * 300,
                1e-12);
    const WarmContainer removed = cluster.removeWarm(id, 300.0);
    EXPECT_NEAR(removed.unspentCommitmentDollars(), 0.0, 1e-12);
    EXPECT_NEAR(cluster.commitmentConsumedDollars(), rate * 200 * 300,
                1e-12);
}

TEST(ClusterLedger, CompressionResizeRefundsTheSavedRemainder)
{
    Cluster cluster(tinyConfig());
    const double rate = cluster.costRate(NodeType::X86);
    const ContainerId id =
        cluster.addWarm(0, 1, 400, false, 0.0, 100.0);
    // Compressed to 100 MB at t=50: the second half accrues at a
    // quarter of the rate, so the expiry removal refunds the saving.
    cluster.resizeWarm(id, 100, true, 50.0);
    const WarmContainer removed = cluster.removeWarm(id, 100.0);
    EXPECT_NEAR(removed.unspentCommitmentDollars(),
                rate * (400 - 100) * 50, 1e-12);
    EXPECT_NEAR(cluster.refundedDollarsTotal(),
                rate * (400 - 100) * 50, 1e-12);
}

TEST(ClusterLedger, LedgerBalancesAcrossMixedOperations)
{
    Cluster cluster(tinyConfig());
    const auto balance = [&] {
        EXPECT_NEAR(cluster.committedDollarsTotal(),
                    cluster.commitmentConsumedDollars() +
                        cluster.refundedDollarsTotal() +
                        cluster.outstandingCommitmentDollars(),
                    1e-12);
    };
    const ContainerId a =
        cluster.addWarm(0, 1, 200, false, 0.0, 120.0);
    const ContainerId b =
        cluster.addWarm(1, 2, 300, false, 10.0, 70.0);
    balance();
    cluster.accrueAll(30.0);
    balance();
    cluster.resizeWarm(a, 80, true, 40.0); // compression mid-window
    balance();
    cluster.recommitWarm(b, 200.0, 50.0); // keep-alive extended
    balance();
    cluster.removeWarm(b, 90.0); // fault eviction before expiry
    balance();
    cluster.removeWarm(a, 120.0); // expiry; compression saved money
    balance();
    EXPECT_GT(cluster.refundedDollarsTotal(), 0.0);
    EXPECT_NEAR(cluster.outstandingCommitmentDollars(), 0.0, 1e-12);
}

// --- failure domains --------------------------------------------------------

namespace {

ClusterConfig
domainConfig()
{
    ClusterConfig config;
    config.numX86 = 4;
    config.numArm = 0;
    config.coresPerNode = 2;
    config.memoryPerNodeMb = 1000;
    config.keepAliveMemoryFraction = 0.5;
    config.numFaultDomains = 2;
    config.domainCooldownSeconds = 300.0;
    return config;
}

} // namespace

TEST(ClusterDomains, NodesStripeAcrossDomains)
{
    Cluster cluster(domainConfig());
    EXPECT_EQ(cluster.numDomains(), 2);
    for (NodeId n = 0; n < 4; ++n)
        EXPECT_EQ(cluster.domainOf(n), faultDomainOf(n, 2));
    const auto perDomain = cluster.nodesPerDomain();
    ASSERT_EQ(perDomain.size(), 2u);
    EXPECT_EQ(perDomain[0], 2u);
    EXPECT_EQ(perDomain[1], 2u);
}

TEST(ClusterDomains, CooldownDeprioritizesButDoesNotExclude)
{
    Cluster cluster(domainConfig());
    cluster.noteDomainFault(0, 100.0);
    EXPECT_TRUE(cluster.domainCoolingDown(0, 150.0));
    EXPECT_FALSE(cluster.domainCoolingDown(1, 150.0));
    EXPECT_FALSE(cluster.domainCoolingDown(0, 401.0));

    // During the cooldown, placement prefers the healthy domain...
    const auto exec =
        cluster.pickNodeForExec(NodeType::X86, 100, 150.0);
    ASSERT_TRUE(exec.has_value());
    EXPECT_EQ(cluster.domainOf(*exec), 1);
    const auto warm =
        cluster.pickNodeForWarm(NodeType::X86, 100, 150.0);
    ASSERT_TRUE(warm.has_value());
    EXPECT_EQ(cluster.domainOf(*warm), 1);

    // ...but a cooling domain is still used when nothing else fits.
    for (NodeId n : {1u, 3u}) {
        cluster.reserveExec(n, 10);
        cluster.reserveExec(n, 10);
    }
    const auto fallback =
        cluster.pickNodeForExec(NodeType::X86, 100, 150.0);
    ASSERT_TRUE(fallback.has_value());
    EXPECT_EQ(cluster.domainOf(*fallback), 0);

    // Legacy call sites pass no timestamp; the cooldown is inert then.
    EXPECT_TRUE(
        cluster.pickNodeForExec(NodeType::X86, 100).has_value());
}

TEST(Cluster, SnapshotResidencyAndSpendAccrual)
{
    Cluster cluster(tinyConfig());
    const auto id = cluster.addSnapshot(0, 7, 400.0, 0.0);
    ASSERT_TRUE(id.has_value());
    EXPECT_EQ(cluster.snapshotCount(7), 1u);
    ASSERT_EQ(cluster.snapshotsFor(7).size(), 1u);
    EXPECT_DOUBLE_EQ(cluster.node(0).snapshotStorageMb, 400.0);

    // Dropping at t=100 accrues 400 MB x 100 s at the snapshot
    // storage rate (a 0.02 fraction of the keep-alive rate).
    const auto record = cluster.removeSnapshot(*id, 100.0);
    EXPECT_EQ(record.function, 7u);
    EXPECT_EQ(cluster.snapshotCount(7), 0u);
    EXPECT_DOUBLE_EQ(cluster.node(0).snapshotStorageMb, 0.0);
    EXPECT_NEAR(cluster.snapshotSpend(),
                cluster.snapshotStorageRate(NodeType::X86) * 400.0 *
                    100.0,
                1e-12);
    EXPECT_LT(cluster.snapshotStorageRate(NodeType::X86),
              cluster.costRate(NodeType::X86) * 0.05);
}

TEST(Cluster, SnapshotStorageBudgetEvictsLeastRecentlyUsed)
{
    ClusterConfig config = tinyConfig();
    config.snapshotStoragePerNodeMb = 1000;
    Cluster cluster(config);
    const auto a = cluster.addSnapshot(0, 1, 400.0, 0.0);
    const auto b = cluster.addSnapshot(0, 2, 400.0, 1.0);
    ASSERT_TRUE(a.has_value() && b.has_value());
    cluster.noteSnapshotUsed(*a, 10.0); // snapshot b is now the LRU

    // A third 400 MB snapshot busts the 1000 MB budget: the least
    // recently USED (not oldest) snapshot on the node is evicted.
    const auto c = cluster.addSnapshot(0, 3, 400.0, 20.0);
    ASSERT_TRUE(c.has_value());
    EXPECT_EQ(cluster.snapshotsEvictedForStorage(), 1u);
    EXPECT_EQ(cluster.snapshotCount(2), 0u);
    EXPECT_EQ(cluster.snapshotCount(1), 1u);
    EXPECT_EQ(cluster.snapshotCount(3), 1u);
    EXPECT_DOUBLE_EQ(cluster.node(0).snapshotStorageMb, 800.0);
    EXPECT_EQ(cluster.snapshotsOnNode(0).size(), 2u);
}

TEST(Cluster, OversizeSnapshotIsRejected)
{
    ClusterConfig config = tinyConfig();
    config.snapshotStoragePerNodeMb = 300;
    Cluster cluster(config);
    EXPECT_FALSE(cluster.addSnapshot(0, 1, 400.0, 0.0).has_value());
    EXPECT_EQ(cluster.snapshotCount(1), 0u);
    EXPECT_DOUBLE_EQ(cluster.node(0).snapshotStorageMb, 0.0);
}

TEST(Cluster, MarkDownPanicsOnLeftoverSnapshots)
{
    // The driver must drop a crashing node's snapshots BEFORE marking
    // it down; leftover storage at markDown is an accounting bug.
    Cluster cluster(tinyConfig());
    ASSERT_TRUE(cluster.addSnapshot(0, 1, 100.0, 0.0).has_value());
    EXPECT_DEATH(cluster.markDown(0), "snapshots");
}
