/**
 * @file
 * Unit tests for the common module: RNG determinism and distribution
 * sanity, statistics accumulators, CSV round-trips, and table
 * rendering.
 */
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "common/csv.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "common/types.hpp"

using namespace codecrunch;

// --- Rng -----------------------------------------------------------------

TEST(Rng, DeterministicForSameSeed)
{
    Rng a(123), b(123);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1), b(2);
    int equal = 0;
    for (int i = 0; i < 64; ++i)
        equal += a.next() == b.next();
    EXPECT_LT(equal, 3);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng rng(5);
    for (int i = 0; i < 10000; ++i) {
        const double u = rng.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
    }
}

TEST(Rng, UniformRangeRespected)
{
    Rng rng(6);
    for (int i = 0; i < 1000; ++i) {
        const double u = rng.uniform(3.0, 7.0);
        EXPECT_GE(u, 3.0);
        EXPECT_LT(u, 7.0);
    }
}

TEST(Rng, UniformIntInclusiveBounds)
{
    Rng rng(7);
    bool sawLo = false, sawHi = false;
    for (int i = 0; i < 2000; ++i) {
        const auto v = rng.uniformInt(2, 5);
        EXPECT_GE(v, 2);
        EXPECT_LE(v, 5);
        sawLo |= v == 2;
        sawHi |= v == 5;
    }
    EXPECT_TRUE(sawLo);
    EXPECT_TRUE(sawHi);
}

TEST(Rng, NormalMeanAndStddev)
{
    Rng rng(8);
    RunningStat stat;
    for (int i = 0; i < 50000; ++i)
        stat.add(rng.normal(10.0, 2.0));
    EXPECT_NEAR(stat.mean(), 10.0, 0.1);
    EXPECT_NEAR(stat.stddev(), 2.0, 0.1);
}

TEST(Rng, ExponentialMean)
{
    Rng rng(9);
    RunningStat stat;
    for (int i = 0; i < 50000; ++i)
        stat.add(rng.exponential(0.5));
    EXPECT_NEAR(stat.mean(), 2.0, 0.1);
}

TEST(Rng, BernoulliFraction)
{
    Rng rng(10);
    int hits = 0;
    for (int i = 0; i < 20000; ++i)
        hits += rng.bernoulli(0.3);
    EXPECT_NEAR(hits / 20000.0, 0.3, 0.02);
}

TEST(Rng, ZipfSkewsTowardLowRanks)
{
    Rng rng(11);
    const auto cdf = Rng::makeZipfCdf(100, 1.1);
    std::vector<int> counts(100, 0);
    for (int i = 0; i < 20000; ++i)
        ++counts[rng.zipf(cdf)];
    EXPECT_GT(counts[0], counts[50]);
    EXPECT_GT(counts[0], 20000 / 100);
}

TEST(Rng, WeightedChoiceFollowsWeights)
{
    Rng rng(12);
    std::vector<double> weights = {1.0, 0.0, 3.0};
    std::vector<int> counts(3, 0);
    for (int i = 0; i < 20000; ++i)
        ++counts[rng.weightedChoice(weights)];
    EXPECT_EQ(counts[1], 0);
    EXPECT_NEAR(counts[2] / static_cast<double>(counts[0]), 3.0, 0.3);
}

TEST(Rng, ShufflePreservesElements)
{
    Rng rng(13);
    std::vector<int> v = {1, 2, 3, 4, 5, 6, 7};
    auto shuffled = v;
    rng.shuffle(shuffled);
    std::sort(shuffled.begin(), shuffled.end());
    EXPECT_EQ(shuffled, v);
}

TEST(Rng, ForkProducesIndependentStream)
{
    Rng a(14);
    Rng child = a.fork();
    EXPECT_NE(a.next(), child.next());
}

TEST(Rng, ParetoRespectsScaleAndTail)
{
    Rng rng(15);
    RunningStat stat;
    for (int i = 0; i < 20000; ++i) {
        const double v = rng.pareto(2.0, 3.0);
        EXPECT_GE(v, 2.0);
        stat.add(v);
    }
    // Mean of Pareto(x_m=2, alpha=3) is alpha*x_m/(alpha-1) = 3.
    EXPECT_NEAR(stat.mean(), 3.0, 0.15);
}

TEST(Rng, LogNormalMedian)
{
    Rng rng(16);
    std::vector<double> samples;
    for (int i = 0; i < 20001; ++i)
        samples.push_back(rng.logNormal(std::log(5.0), 0.8));
    std::nth_element(samples.begin(),
                     samples.begin() + samples.size() / 2,
                     samples.end());
    EXPECT_NEAR(samples[samples.size() / 2], 5.0, 0.4);
}

// --- RunningStat -----------------------------------------------------------

TEST(RunningStat, EmptyIsZero)
{
    RunningStat s;
    EXPECT_EQ(s.count(), 0u);
    EXPECT_DOUBLE_EQ(s.mean(), 0.0);
    EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
}

TEST(RunningStat, KnownSequence)
{
    RunningStat s;
    for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        s.add(v);
    EXPECT_DOUBLE_EQ(s.mean(), 5.0);
    EXPECT_DOUBLE_EQ(s.stddev(), 2.0); // classic population-stddev example
    EXPECT_DOUBLE_EQ(s.min(), 2.0);
    EXPECT_DOUBLE_EQ(s.max(), 9.0);
    EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStat, MergeMatchesCombined)
{
    Rng rng(20);
    RunningStat whole, left, right;
    for (int i = 0; i < 1000; ++i) {
        const double v = rng.normal(3.0, 1.5);
        whole.add(v);
        (i % 2 ? left : right).add(v);
    }
    left.merge(right);
    EXPECT_EQ(left.count(), whole.count());
    EXPECT_NEAR(left.mean(), whole.mean(), 1e-9);
    EXPECT_NEAR(left.variance(), whole.variance(), 1e-9);
}

TEST(RunningStat, MergeWithEmpty)
{
    RunningStat a, b;
    a.add(1.0);
    a.add(3.0);
    a.merge(b);
    EXPECT_DOUBLE_EQ(a.mean(), 2.0);
    b.merge(a);
    EXPECT_DOUBLE_EQ(b.mean(), 2.0);
}

// --- PercentileDigest -------------------------------------------------------

TEST(PercentileDigest, QuantilesOfUniformRamp)
{
    PercentileDigest d;
    for (int i = 0; i <= 100; ++i)
        d.add(static_cast<double>(i));
    EXPECT_DOUBLE_EQ(d.quantile(0.0), 0.0);
    EXPECT_DOUBLE_EQ(d.quantile(0.5), 50.0);
    EXPECT_DOUBLE_EQ(d.quantile(1.0), 100.0);
    EXPECT_NEAR(d.quantile(0.25), 25.0, 1e-9);
}

TEST(PercentileDigest, CdfMonotone)
{
    PercentileDigest d;
    for (double v : {1.0, 2.0, 2.0, 3.0})
        d.add(v);
    EXPECT_DOUBLE_EQ(d.cdf(0.5), 0.0);
    EXPECT_DOUBLE_EQ(d.cdf(1.0), 0.25);
    EXPECT_DOUBLE_EQ(d.cdf(2.0), 0.75);
    EXPECT_DOUBLE_EQ(d.cdf(3.0), 1.0);
}

TEST(PercentileDigest, EmptyDigest)
{
    PercentileDigest d;
    EXPECT_DOUBLE_EQ(d.quantile(0.5), 0.0);
    EXPECT_DOUBLE_EQ(d.mean(), 0.0);
    EXPECT_EQ(d.count(), 0u);
}

TEST(PercentileDigest, InterleavedAddAndQuery)
{
    PercentileDigest d;
    d.add(5.0);
    EXPECT_DOUBLE_EQ(d.median(), 5.0);
    d.add(1.0);
    d.add(9.0);
    EXPECT_DOUBLE_EQ(d.median(), 5.0);
    EXPECT_DOUBLE_EQ(d.min(), 1.0);
    EXPECT_DOUBLE_EQ(d.max(), 9.0);
}

// --- Histogram ---------------------------------------------------------------

TEST(Histogram, BinningAndOverflow)
{
    Histogram h(0.0, 10.0, 10);
    h.add(-1.0);
    h.add(0.0);
    h.add(9.99);
    h.add(10.0);
    h.add(5.5);
    EXPECT_EQ(h.underflow(), 1u);
    EXPECT_EQ(h.overflow(), 1u);
    EXPECT_EQ(h.count(0), 1u);
    EXPECT_EQ(h.count(9), 1u);
    EXPECT_EQ(h.count(5), 1u);
    EXPECT_EQ(h.total(), 5u);
    EXPECT_DOUBLE_EQ(h.binLow(5), 5.0);
    EXPECT_DOUBLE_EQ(h.binHigh(5), 6.0);
}

// --- CSV ---------------------------------------------------------------------

TEST(Csv, RoundTrip)
{
    const std::string path = "/tmp/cc_csv_test.csv";
    {
        CsvWriter writer(path);
        writer.writeRow({"a", "b", "c"});
        writer.writeFields(1, 2.5, "x");
    }
    const auto rows = CsvReader::readFile(path);
    ASSERT_EQ(rows.size(), 2u);
    EXPECT_EQ(rows[0], (CsvRow{"a", "b", "c"}));
    EXPECT_EQ(rows[1][0], "1");
    EXPECT_EQ(rows[1][1], "2.5");
    EXPECT_EQ(rows[1][2], "x");
    std::remove(path.c_str());
}

TEST(Csv, SkipsCommentsAndBlank)
{
    const std::string path = "/tmp/cc_csv_test2.csv";
    {
        std::ofstream out(path);
        out << "# comment\n\nx,y\n";
    }
    const auto rows = CsvReader::readFile(path);
    ASSERT_EQ(rows.size(), 1u);
    EXPECT_EQ(rows[0], (CsvRow{"x", "y"}));
    std::remove(path.c_str());
}

TEST(Csv, ParseLineHandlesEmptyFields)
{
    EXPECT_EQ(CsvReader::parseLine("a,,b"), (CsvRow{"a", "", "b"}));
    EXPECT_EQ(CsvReader::parseLine(""), (CsvRow{""}));
}

TEST(Csv, NumberedReadReportsOriginalLineNumbers)
{
    const std::string path = "/tmp/cc_csv_test3.csv";
    {
        std::ofstream out(path);
        out << "# comment\n\nx,y\n# another\n1,2\n";
    }
    const auto lines = CsvReader::readFileNumbered(path);
    ASSERT_EQ(lines.size(), 2u);
    EXPECT_EQ(lines[0].number, 3u);
    EXPECT_EQ(lines[0].fields, (CsvRow{"x", "y"}));
    EXPECT_EQ(lines[1].number, 5u);
    std::remove(path.c_str());
}

TEST(Csv, StrictParsersAcceptWholeFields)
{
    EXPECT_EQ(CsvReader::parseU64("42", "f.csv", 1, 1), 42u);
    EXPECT_EQ(CsvReader::parseU64("0", "f.csv", 1, 1), 0u);
    EXPECT_DOUBLE_EQ(CsvReader::parseDouble("2.5", "f.csv", 1, 1),
                     2.5);
    EXPECT_DOUBLE_EQ(CsvReader::parseDouble("-1e3", "f.csv", 1, 1),
                     -1000.0);
}

TEST(Csv, StrictParsersRejectMalformedFields)
{
    EXPECT_DEATH(CsvReader::parseU64("12abc", "f.csv", 7, 3),
                 "f.csv:7: column 3");
    EXPECT_DEATH(CsvReader::parseU64("", "f.csv", 7, 3),
                 "unsigned integer");
    EXPECT_DEATH(CsvReader::parseU64("-3", "f.csv", 7, 3),
                 "unsigned integer");
    EXPECT_DEATH(CsvReader::parseU64("2.5", "f.csv", 7, 3),
                 "unsigned integer");
    EXPECT_DEATH(CsvReader::parseDouble("1.5x", "f.csv", 2, 9),
                 "f.csv:2: column 9");
    EXPECT_DEATH(CsvReader::parseDouble("", "f.csv", 2, 9), "number");
    EXPECT_DEATH(CsvReader::parseDouble("nan", "f.csv", 2, 9),
                 "number");
}

TEST(Csv, RequireFieldsNamesTruncatedRow)
{
    const CsvLine line{12, {"a", "b"}};
    CsvReader::requireFields(line, 2, "f.csv"); // enough: no death
    EXPECT_DEATH(CsvReader::requireFields(line, 3, "f.csv"),
                 "f.csv:12: expected 3 fields, got 2");
}

// --- ConsoleTable --------------------------------------------------------------

TEST(ConsoleTable, RendersAlignedColumns)
{
    ConsoleTable table;
    table.header({"name", "value"});
    table.addRow("x", 1.5);
    std::ostringstream os;
    table.print(os);
    const std::string out = os.str();
    EXPECT_NE(out.find("name"), std::string::npos);
    EXPECT_NE(out.find("1.500"), std::string::npos);
}

TEST(ConsoleTable, NumAndPct)
{
    EXPECT_EQ(ConsoleTable::num(1.23456, 2), "1.23");
    EXPECT_EQ(ConsoleTable::pct(0.1234), "12.3%");
}

// --- types -----------------------------------------------------------------------

TEST(Types, ToStringNames)
{
    EXPECT_STREQ(toString(NodeType::X86), "x86");
    EXPECT_STREQ(toString(NodeType::ARM), "ARM");
    EXPECT_STREQ(toString(StartType::Cold), "cold");
    EXPECT_STREQ(toString(StartType::Warm), "warm");
    EXPECT_STREQ(toString(StartType::WarmCompressed),
                 "warm-compressed");
    EXPECT_STREQ(toString(StartType::Snapshot), "snapshot");
}
