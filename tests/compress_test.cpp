/**
 * @file
 * Compression substrate tests: LZ4 block-format and range-coder codecs
 * (round-trip property sweeps, malformed-input rejection, ratio
 * behaviour), the image synthesizer, and the profiler.
 */
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "compress/image_synth.hpp"
#include "compress/lz4_codec.hpp"
#include "compress/lz4hc_codec.hpp"
#include "compress/profiler.hpp"
#include "compress/range_lz_codec.hpp"

using namespace codecrunch;
using namespace codecrunch::compress;

namespace {

const Lz4Codec kLz4;
const Lz4HcCodec kLz4Hc;
const RangeLzCodec kRangeLz;
const NullCodec kNull;

std::vector<const Codec*>
allCodecs()
{
    return {&kLz4, &kLz4Hc, &kRangeLz, &kNull};
}

Bytes
randomBytes(std::size_t n, std::uint64_t seed)
{
    Rng rng(seed);
    Bytes out(n);
    for (auto& b : out)
        b = static_cast<std::uint8_t>(rng.next());
    return out;
}

} // namespace

// --- round-trip property sweep -------------------------------------------

struct RoundTripCase {
    const char* codec;
    std::size_t size;
    double compressibility;
    std::uint64_t seed;
};

class CodecRoundTrip
    : public ::testing::TestWithParam<RoundTripCase>
{
  protected:
    const Codec&
    codec() const
    {
        const std::string name = GetParam().codec;
        if (name == "lz4")
            return kLz4;
        if (name == "lz4-hc")
            return kLz4Hc;
        if (name == "range-lz")
            return kRangeLz;
        return kNull;
    }
};

TEST_P(CodecRoundTrip, LosslessRoundTrip)
{
    const auto& param = GetParam();
    ImageSpec spec{param.size, param.compressibility, param.seed};
    const Bytes image = ImageSynthesizer::generate(spec);
    const Bytes packed = codec().compress(image);
    const auto back = codec().decompress(packed, image.size());
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(*back, image);
}

namespace {

std::vector<RoundTripCase>
roundTripCases()
{
    std::vector<RoundTripCase> cases;
    for (const char* codec : {"lz4", "lz4-hc", "range-lz", "null"}) {
        for (std::size_t size :
             {std::size_t{0}, std::size_t{1}, std::size_t{7},
              std::size_t{12}, std::size_t{13}, std::size_t{64},
              std::size_t{4096}, std::size_t{1} << 18}) {
            for (double c : {0.0, 0.5, 1.0}) {
                cases.push_back({codec, size, c, 17});
                cases.push_back({codec, size, c, 9001});
            }
        }
    }
    return cases;
}

} // namespace

INSTANTIATE_TEST_SUITE_P(Sweep, CodecRoundTrip,
                         ::testing::ValuesIn(roundTripCases()));

// --- targeted content patterns ---------------------------------------------

TEST(Lz4Codec, RoundTripsHighEntropyData)
{
    const Bytes data = randomBytes(100000, 3);
    const Bytes packed = kLz4.compress(data);
    const auto back = kLz4.decompress(packed, data.size());
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(*back, data);
    // Incompressible data must not blow up unreasonably.
    EXPECT_LT(packed.size(), data.size() + data.size() / 16 + 64);
}

TEST(Lz4Codec, CompressesRunsViaOverlappingMatches)
{
    Bytes data(50000, 0xab);
    const Bytes packed = kLz4.compress(data);
    EXPECT_LT(packed.size(), 300u); // RLE-like content collapses
    const auto back = kLz4.decompress(packed, data.size());
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(*back, data);
}

TEST(Lz4Codec, RoundTripsShortPeriodicPattern)
{
    Bytes data;
    for (int i = 0; i < 10000; ++i)
        data.push_back(static_cast<std::uint8_t>("abc"[i % 3]));
    const Bytes packed = kLz4.compress(data);
    const auto back = kLz4.decompress(packed, data.size());
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(*back, data);
    EXPECT_LT(packed.size(), data.size() / 10);
}

TEST(Lz4Codec, RoundTripsLongRangeRepetition)
{
    // Two identical 40 KiB halves: matches at offset 40960 < 64 KiB.
    Bytes half = randomBytes(40960, 5);
    Bytes data = half;
    data.insert(data.end(), half.begin(), half.end());
    const Bytes packed = kLz4.compress(data);
    const auto back = kLz4.decompress(packed, data.size());
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(*back, data);
    EXPECT_LT(packed.size(), data.size() * 3 / 4);
}

TEST(Lz4Codec, RepetitionBeyondWindowIsNotMatched)
{
    // Identical 100 KiB halves: offset 102400 > 64 KiB window, so the
    // second half cannot reference the first; ratio stays near 1.
    Bytes half = randomBytes(102400, 6);
    Bytes data = half;
    data.insert(data.end(), half.begin(), half.end());
    const Bytes packed = kLz4.compress(data);
    const auto back = kLz4.decompress(packed, data.size());
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(*back, data);
    EXPECT_GT(packed.size(), data.size() * 9 / 10);
}

TEST(RangeLzCodec, WindowReachesBeyondLz4s)
{
    // 100 KiB offset fits the range codec's 1 MiB window.
    Bytes half = randomBytes(102400, 6);
    Bytes data = half;
    data.insert(data.end(), half.begin(), half.end());
    const Bytes packed = kRangeLz.compress(data);
    const auto back = kRangeLz.decompress(packed, data.size());
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(*back, data);
    EXPECT_LT(packed.size(), data.size() * 3 / 4);
}

TEST(RangeLzCodec, BeatsLz4OnText)
{
    ImageSpec spec{1 << 19, 0.9, 11};
    const Bytes image = ImageSynthesizer::generate(spec);
    const Bytes lz4Packed = kLz4.compress(image);
    const Bytes rangePacked = kRangeLz.compress(image);
    EXPECT_LT(rangePacked.size(), lz4Packed.size());
}

// --- malformed input rejection ----------------------------------------------

TEST(Lz4Codec, RejectsTruncatedStream)
{
    ImageSpec spec{4096, 0.5, 1};
    const Bytes image = ImageSynthesizer::generate(spec);
    Bytes packed = kLz4.compress(image);
    packed.resize(packed.size() / 2);
    EXPECT_FALSE(kLz4.decompress(packed, image.size()).has_value());
}

TEST(Lz4Codec, RejectsWrongOriginalSize)
{
    ImageSpec spec{4096, 0.5, 1};
    const Bytes image = ImageSynthesizer::generate(spec);
    const Bytes packed = kLz4.compress(image);
    EXPECT_FALSE(kLz4.decompress(packed, image.size() + 1).has_value());
    EXPECT_FALSE(
        kLz4.decompress(packed, image.size() - 1).has_value());
}

TEST(Lz4Codec, RejectsBogusOffsets)
{
    // token: 1 literal, match follows; offset 0xffff with only one
    // byte of history is invalid.
    const Bytes bogus = {0x14, 0x41, 0xff, 0xff};
    EXPECT_FALSE(kLz4.decompress(bogus, 100).has_value());
    // Offset zero is always invalid.
    const Bytes zeroOffset = {0x14, 0x41, 0x00, 0x00};
    EXPECT_FALSE(kLz4.decompress(zeroOffset, 100).has_value());
}

TEST(Lz4Codec, RandomGarbageNeverCrashes)
{
    Rng rng(77);
    for (int trial = 0; trial < 200; ++trial) {
        const Bytes garbage =
            randomBytes(1 + rng.next() % 512, rng.next());
        // Either decodes to the right size or is rejected — but never
        // crashes or overflows.
        const auto out = kLz4.decompress(garbage, 256);
        if (out) {
            EXPECT_EQ(out->size(), 256u);
        }
    }
}

TEST(RangeLzCodec, RandomGarbageNeverCrashes)
{
    Rng rng(78);
    for (int trial = 0; trial < 100; ++trial) {
        const Bytes garbage =
            randomBytes(5 + rng.next() % 512, rng.next());
        const auto out = kRangeLz.decompress(garbage, 256);
        if (out) {
            EXPECT_EQ(out->size(), 256u);
        }
    }
}

TEST(RangeLzCodec, RejectsTruncatedStream)
{
    ImageSpec spec{8192, 0.7, 2};
    const Bytes image = ImageSynthesizer::generate(spec);
    Bytes packed = kRangeLz.compress(image);
    packed.resize(packed.size() / 3);
    const auto out = kRangeLz.decompress(packed, image.size());
    // Truncation either gets detected or decodes to wrong content —
    // it must never return the original data.
    if (out) {
        EXPECT_NE(*out, image);
    }
}

// --- ratio behaviour ------------------------------------------------------------

TEST(Codecs, RatioIncreasesWithCompressibility)
{
    for (const Codec* codec : allCodecs()) {
        if (codec == &kNull)
            continue;
        double lastRatio = 0.0;
        for (double c : {0.1, 0.5, 0.9}) {
            ImageSpec spec{1 << 19, c, 33};
            const Bytes image = ImageSynthesizer::generate(spec);
            const Bytes packed = codec->compress(image);
            const double ratio =
                static_cast<double>(image.size()) /
                static_cast<double>(packed.size());
            EXPECT_GT(ratio, lastRatio)
                << codec->name() << " at c=" << c;
            lastRatio = ratio;
        }
    }
}

TEST(Codecs, MidCompressibilityReachesPaperRatio)
{
    // Paper Sec. 3.2: lz4 achieves over 2.5x on the evaluated images.
    ImageSpec spec{1 << 20, 0.6, 4};
    const Bytes image = ImageSynthesizer::generate(spec);
    const Bytes packed = kLz4.compress(image);
    EXPECT_GT(static_cast<double>(image.size()) / packed.size(), 2.2);
}

// --- image synthesizer -------------------------------------------------------------

TEST(ImageSynthesizer, ExactRequestedSize)
{
    for (std::size_t size : {0ul, 1ul, 1000ul, 65536ul, 300000ul}) {
        ImageSpec spec{size, 0.5, 5};
        EXPECT_EQ(ImageSynthesizer::generate(spec).size(), size);
    }
}

TEST(ImageSynthesizer, DeterministicPerSeed)
{
    ImageSpec spec{100000, 0.5, 123};
    EXPECT_EQ(ImageSynthesizer::generate(spec),
              ImageSynthesizer::generate(spec));
}

TEST(ImageSynthesizer, DifferentSeedsDiffer)
{
    ImageSpec a{100000, 0.5, 1};
    ImageSpec b{100000, 0.5, 2};
    EXPECT_NE(ImageSynthesizer::generate(a),
              ImageSynthesizer::generate(b));
}

TEST(ImageSynthesizer, CompressibilityIsClamped)
{
    ImageSpec wild{50000, 7.5, 9};
    ImageSpec clamped{50000, 1.0, 9};
    EXPECT_EQ(ImageSynthesizer::generate(wild),
              ImageSynthesizer::generate(clamped));
}

// --- profiler -----------------------------------------------------------------------

TEST(CompressionProfiler, ReportsConsistentFields)
{
    ImageSpec spec{1 << 18, 0.6, 21};
    const auto profile =
        CompressionProfiler::profileSpec(kLz4, spec, 1);
    EXPECT_EQ(profile.originalBytes, spec.sizeBytes);
    EXPECT_GT(profile.compressedBytes, 0u);
    EXPECT_NEAR(profile.ratio,
                static_cast<double>(profile.originalBytes) /
                    profile.compressedBytes,
                1e-9);
    EXPECT_GT(profile.compressSeconds, 0.0);
    EXPECT_GT(profile.decompressSeconds, 0.0);
    EXPECT_GT(profile.compressBps, 0.0);
    EXPECT_GT(profile.decompressBps, 0.0);
}

TEST(CompressionProfiler, NullCodecRatioIsOne)
{
    ImageSpec spec{1 << 16, 0.6, 21};
    const auto profile =
        CompressionProfiler::profileSpec(kNull, spec, 1);
    EXPECT_DOUBLE_EQ(profile.ratio, 1.0);
}

TEST(Codecs, NamesAreStable)
{
    EXPECT_EQ(kLz4.name(), "lz4");
    EXPECT_EQ(kLz4Hc.name(), "lz4-hc");
    EXPECT_EQ(kRangeLz.name(), "range-lz");
    EXPECT_EQ(kNull.name(), "null");
    (void)allCodecs();
}

// --- LZ4-HC ------------------------------------------------------------

TEST(Lz4HcCodec, BeatsFastEncoderOnCompressibleData)
{
    ImageSpec spec{1 << 19, 0.7, 21};
    const Bytes image = ImageSynthesizer::generate(spec);
    const Bytes fast = kLz4.compress(image);
    const Bytes hc = kLz4Hc.compress(image);
    EXPECT_LT(hc.size(), fast.size());
}

TEST(Lz4HcCodec, StreamsAreFormatCompatibleWithFastDecoder)
{
    // The HC encoder emits plain LZ4 block format: the fast codec's
    // decoder must decode it bit-exactly.
    for (double c : {0.2, 0.6, 0.9}) {
        ImageSpec spec{100000, c, 5};
        const Bytes image = ImageSynthesizer::generate(spec);
        const Bytes packed = kLz4Hc.compress(image);
        const auto viaFast = kLz4.decompress(packed, image.size());
        ASSERT_TRUE(viaFast.has_value());
        EXPECT_EQ(*viaFast, image);
    }
}

TEST(Lz4HcCodec, MoreAttemptsNeverHurtRatio)
{
    ImageSpec spec{1 << 18, 0.6, 9};
    const Bytes image = ImageSynthesizer::generate(spec);
    const Bytes shallow = Lz4HcCodec(4).compress(image);
    const Bytes deep = Lz4HcCodec(128).compress(image);
    EXPECT_LE(deep.size(), shallow.size() + 16);
}
