/**
 * @file
 * CodeCrunch core tests: the P_est estimator, the budget creditor, the
 * interval objective's probabilistic warm/cost model, observed-stat
 * estimation, and the policy's configuration surface.
 */
#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <tuple>

#include "core/budget.hpp"
#include "core/choice_space.hpp"
#include "core/codecrunch.hpp"
#include "core/interval_objective.hpp"
#include "core/observed_stats.hpp"
#include "core/pest.hpp"

using namespace codecrunch;
using namespace codecrunch::core;

// --- P_est ------------------------------------------------------------------

TEST(Pest, UnknownWithoutHistory)
{
    policy::FunctionHistory h;
    EXPECT_LT(pest(h), 0.0);
    h.record(10.0);
    EXPECT_LT(pest(h), 0.0); // one arrival: no IAT yet
}

TEST(Pest, PerfectlyPeriodicEqualsPeriod)
{
    policy::FunctionHistory h;
    for (int i = 0; i < 20; ++i)
        h.record(i * 30.0);
    // Local mean == global mean == 30, both stddevs 0 -> P_est = 30.
    EXPECT_NEAR(pest(h), 30.0, 1e-9);
}

TEST(Pest, DivergentLocalShiftsTowardLocal)
{
    policy::FunctionHistory h(5);
    Seconds t = 0.0;
    for (int i = 0; i < 50; ++i)
        h.record(t += 10.0);
    for (int i = 0; i < 6; ++i)
        h.record(t += 100.0);
    const double p = pest(h);
    // Local mean 100, global mean ~19.6: the blend must lean local.
    EXPECT_GT(p, 60.0);
}

TEST(Pest, IncludesOneStddevSafetyMargin)
{
    policy::FunctionHistory h;
    Rng rng(7);
    Seconds t = 0.0;
    for (int i = 0; i < 200; ++i)
        h.record(t += rng.uniform(50.0, 150.0));
    // With local ~ global, P_est ~ Gm + Gs > Gm.
    EXPECT_GT(pest(h), h.globalMean());
}

// --- BudgetCreditor ---------------------------------------------------------

TEST(BudgetCreditor, AllocatesProRataPlusCredit)
{
    BudgetCreditor creditor(1.0, 60.0); // $1/s, 1-min intervals
    EXPECT_NEAR(creditor.allocate(0.0), 60.0, 1e-9);
    // Nothing spent: the next interval carries the credit forward.
    EXPECT_NEAR(creditor.allocate(0.0), 120.0, 1e-9);
    // Spend catches up: available shrinks accordingly.
    EXPECT_NEAR(creditor.allocate(150.0), 30.0, 1e-9);
    EXPECT_NEAR(creditor.allocatedTotal(), 180.0, 1e-9);
}

TEST(BudgetCreditor, OverspendIsFlooredNotZeroed)
{
    BudgetCreditor creditor(1.0, 60.0);
    creditor.allocate(0.0);
    // Massive overspend: available floors at 25% of the allocation
    // instead of collapsing to zero.
    EXPECT_NEAR(creditor.allocate(1000.0), 15.0, 1e-9);
}

TEST(BudgetCreditor, GrantedEqualsSpentPlusRemainingCredit)
{
    BudgetCreditor creditor(1.0, 60.0);
    // After every allocate(spent) returning r, the books must close:
    // grantedTotal == spent + r.
    Dollars r = creditor.allocate(0.0);
    EXPECT_NEAR(creditor.grantedTotal(), 0.0 + r, 1e-9);
    r = creditor.allocate(40.0);
    EXPECT_NEAR(creditor.grantedTotal(), 40.0 + r, 1e-9);
    r = creditor.allocate(100.0);
    EXPECT_NEAR(creditor.grantedTotal(), 100.0 + r, 1e-9);
    // No floor grant was ever needed: granted tracks the pro-rata
    // allocation exactly.
    EXPECT_NEAR(creditor.floorGrantedTotal(), 0.0, 1e-9);
    EXPECT_NEAR(creditor.grantedTotal(), creditor.allocatedTotal(),
                1e-9);
}

TEST(BudgetCreditor, FloorGrantsAreRecorded)
{
    BudgetCreditor creditor(1.0, 60.0);
    creditor.allocate(0.0);
    const Dollars r = creditor.allocate(1000.0);
    EXPECT_NEAR(r, 15.0, 1e-9); // floored at 0.25 x per-interval
    // The floor grant is money beyond the pro-rata allocation; it must
    // be recorded, not silently minted: granted == spent + credit and
    // the excess over allocatedTotal is exactly the floor ledger.
    EXPECT_NEAR(creditor.grantedTotal(), 1000.0 + 15.0, 1e-9);
    EXPECT_NEAR(creditor.grantedTotal() - creditor.allocatedTotal(),
                creditor.floorGrantedTotal(), 1e-9);

    // A later interval where the natural allocation wins again closes
    // the gap: granted returns to the allocation track while the floor
    // ledger only ever grows.
    const Dollars floorSoFar = creditor.floorGrantedTotal();
    creditor.allocate(0.0);
    EXPECT_NEAR(creditor.grantedTotal(), creditor.allocatedTotal(),
                1e-9);
    EXPECT_GE(creditor.floorGrantedTotal(), floorSoFar);
    // Invariant range: 0 <= granted - allocated <= floorGranted.
    EXPECT_GE(creditor.grantedTotal() - creditor.allocatedTotal(),
              -1e-9);
    EXPECT_LE(creditor.grantedTotal() - creditor.allocatedTotal(),
              creditor.floorGrantedTotal() + 1e-9);
}

// --- IntervalObjective --------------------------------------------------------

namespace {

FunctionEstimate
basicEstimate()
{
    FunctionEstimate e;
    e.pest = 300.0;
    e.sigma = 60.0;
    e.exec[0] = 2.0;
    e.exec[1] = 2.4;
    e.coldStart[0] = 3.0;
    e.coldStart[1] = 3.3;
    e.decompress[0] = 1.0;
    e.decompress[1] = 1.1;
    e.memoryMb = 512;
    e.compressedMb = 200;
    e.warmBaseline = 2.0;
    e.weight = 1.0;
    return e;
}

const double kRates[kNumNodeTypes] = {3.26e-9, 2.28e-9};

opt::Choice
choiceWith(int level, bool compress = false,
           NodeType arch = NodeType::X86)
{
    return opt::Choice{compress, arch, level};
}

} // namespace

TEST(IntervalObjective, WarmProbabilityMonotoneInKeepAlive)
{
    IntervalObjective objective({basicEstimate()}, kRates, 1.0);
    double lastService = 1e300;
    for (int level = 0;
         level < static_cast<int>(opt::keepAliveLevels().size());
         ++level) {
        const double service =
            objective.term(0, choiceWith(level)).first;
        EXPECT_LE(service, lastService + 1e-12);
        lastService = service;
    }
}

TEST(IntervalObjective, ZeroKeepAliveMeansAlwaysCold)
{
    IntervalObjective objective({basicEstimate()}, kRates, 1.0);
    const auto [service, cost] = objective.term(0, choiceWith(0));
    EXPECT_NEAR(service, 2.0 + 3.0, 1e-9);
    EXPECT_NEAR(cost, 0.0, 1e-15);
}

TEST(IntervalObjective, LargeKeepAliveApproachesWarmService)
{
    IntervalObjective objective({basicEstimate()}, kRates, 1.0);
    const int top =
        static_cast<int>(opt::keepAliveLevels().size()) - 1;
    // K = 3600 vs pest 300, sigma 60: essentially always warm.
    EXPECT_NEAR(objective.term(0, choiceWith(top)).first, 2.0, 0.01);
}

TEST(IntervalObjective, CompressionAddsDecompressionWhenWarm)
{
    IntervalObjective objective({basicEstimate()}, kRates, 1.0);
    const int top =
        static_cast<int>(opt::keepAliveLevels().size()) - 1;
    const double plain = objective.term(0, choiceWith(top)).first;
    const double packed =
        objective.term(0, choiceWith(top, true)).first;
    EXPECT_NEAR(packed - plain, 1.0, 0.02);
}

TEST(IntervalObjective, CompressionShrinksCost)
{
    IntervalObjective objective({basicEstimate()}, kRates, 1.0);
    const int top =
        static_cast<int>(opt::keepAliveLevels().size()) - 1;
    const double plainCost = objective.term(0, choiceWith(top)).second;
    const double packedCost =
        objective.term(0, choiceWith(top, true)).second;
    EXPECT_NEAR(packedCost / plainCost, 200.0 / 512.0, 1e-6);
}

TEST(IntervalObjective, ExpectedHoldCapsAtPest)
{
    // With K far above pest, the expected hold converges to ~pest, not
    // K: the container is consumed at the next arrival.
    IntervalObjective objective({basicEstimate()}, kRates, 1.0);
    const int top =
        static_cast<int>(opt::keepAliveLevels().size()) - 1;
    const double cost = objective.term(0, choiceWith(top)).second;
    const double perSecond = 512 * kRates[0];
    EXPECT_NEAR(cost / perSecond, 300.0, 40.0);
}

TEST(IntervalObjective, ArmCostUsesArmRate)
{
    IntervalObjective objective({basicEstimate()}, kRates, 1.0);
    const int top =
        static_cast<int>(opt::keepAliveLevels().size()) - 1;
    const double x86Cost = objective.term(0, choiceWith(top)).second;
    const double armCost =
        objective.term(0, choiceWith(top, false, NodeType::ARM)).second;
    EXPECT_NEAR(armCost / x86Cost, kRates[1] / kRates[0], 1e-6);
}

TEST(IntervalObjective, WeightScalesServiceAndCost)
{
    auto heavy = basicEstimate();
    heavy.weight = 10.0;
    IntervalObjective one({basicEstimate()}, kRates, 1.0);
    IntervalObjective ten({heavy}, kRates, 1.0);
    const auto a = one.term(0, choiceWith(3));
    const auto b = ten.term(0, choiceWith(3));
    EXPECT_NEAR(b.first / a.first, 10.0, 1e-6);
    EXPECT_GT(b.second, a.second);
}

TEST(IntervalObjective, RestrictionsForbidAxes)
{
    ChoiceRestrictions restrictions;
    restrictions.allowArm = false;
    restrictions.allowCompression = false;
    IntervalObjective objective({basicEstimate()}, kRates, 1.0,
                                restrictions);
    EXPECT_GE(objective
                  .term(0, choiceWith(3, false, NodeType::ARM))
                  .first,
              1e8);
    EXPECT_GE(objective.term(0, choiceWith(3, true)).first, 1e8);
    EXPECT_LT(objective.term(0, choiceWith(3)).first, 1e8);
}

TEST(IntervalObjective, SlaPenalizesSlowChoices)
{
    ChoiceRestrictions restrictions;
    restrictions.slaSlack = 0.2; // limit = 2.4 s
    IntervalObjective objective({basicEstimate()}, kRates, 1.0,
                                restrictions);
    // Cold service (5.0 s) blows the limit and picks up the penalty.
    const double cold = objective.term(0, choiceWith(0)).first;
    EXPECT_GT(cold, 5.0 + 20.0);
    // Warm service (~2.0 s) is inside the limit.
    const int top =
        static_cast<int>(opt::keepAliveLevels().size()) - 1;
    EXPECT_NEAR(objective.term(0, choiceWith(top)).first, 2.0, 0.05);
}

TEST(IntervalObjective, CostWeightFoldsPriceIntoService)
{
    ChoiceRestrictions priced;
    priced.costWeight = 1e6;
    IntervalObjective objective({basicEstimate()}, kRates, 1e18,
                                priced);
    IntervalObjective free({basicEstimate()}, kRates, 1e18);
    const int top =
        static_cast<int>(opt::keepAliveLevels().size()) - 1;
    const auto pricedTerm = objective.term(0, choiceWith(top));
    const auto freeTerm = free.term(0, choiceWith(top));
    EXPECT_NEAR(pricedTerm.first - freeTerm.first,
                1e6 * freeTerm.second, 1e-6);
}

TEST(IntervalObjective, UnknownPestGetsMildPrior)
{
    auto estimate = basicEstimate();
    estimate.pest = -1.0;
    IntervalObjective objective({estimate}, kRates, 1.0);
    // K = 0: always cold.
    EXPECT_NEAR(objective.term(0, choiceWith(0)).first, 5.0, 1e-9);
    // K = 3600: the unknown-period prior caps at 0.3 warm probability.
    const int top =
        static_cast<int>(opt::keepAliveLevels().size()) - 1;
    const double expected =
        2.0 + (1.0 - 0.3 * (1.0 - std::exp(-3600.0 / 900.0))) * 3.0;
    EXPECT_NEAR(objective.term(0, choiceWith(top)).first, expected,
                1e-6);
}

// --- ChoiceSpaceGenerator ---------------------------------------------------

TEST(ChoiceSpace, SpaceSizeGrowsExponentially)
{
    EXPECT_NEAR(ChoiceSpaceGenerator::log10SpaceSize(1),
                std::log10(64.0), 1e-9);
    EXPECT_NEAR(ChoiceSpaceGenerator::log10SpaceSize(1000),
                1000.0 * std::log10(64.0), 1e-6);
}

TEST(ChoiceSpace, DecodeCoversEveryChoiceOnce)
{
    std::set<std::tuple<bool, int, int, bool>> seen;
    for (std::size_t i = 0; i < opt::choicesPerFunction(); ++i) {
        const auto c = ChoiceSpaceGenerator::decode(i);
        seen.insert({c.compress, static_cast<int>(c.arch),
                     c.keepAliveLevel, c.snapshot});
    }
    EXPECT_EQ(seen.size(), opt::choicesPerFunction());
}

TEST(ChoiceSpace, SamplesAreFeasible)
{
    std::vector<FunctionEstimate> estimates(6, basicEstimate());
    IntervalObjective objective(std::move(estimates), kRates,
                                5e-4);
    ChoiceSpaceGenerator space(objective);
    Rng rng(3);
    for (const auto& assignment : space.sample(50, rng)) {
        EXPECT_TRUE(space.feasible(assignment));
        EXPECT_EQ(assignment.size(), 6u);
    }
}

TEST(ChoiceSpace, EnumerationMatchesFeasiblePredicate)
{
    std::vector<FunctionEstimate> estimates(2, basicEstimate());
    IntervalObjective objective(std::move(estimates), kRates, 1e-3);
    ChoiceSpaceGenerator space(objective);
    const auto feasibleSet = space.enumerate();
    EXPECT_GT(feasibleSet.size(), 0u);
    EXPECT_LT(feasibleSet.size(), 64u * 64u); // budget excludes some
    for (const auto& assignment : feasibleSet)
        EXPECT_TRUE(space.feasible(assignment));
    // Zero keep-alive everywhere costs nothing: always a member.
    opt::Assignment zero(2, opt::Choice{false, NodeType::X86, 0});
    EXPECT_TRUE(space.feasible(zero));
}

TEST(ChoiceSpace, EnumerationPanicsOnLargeProblems)
{
    std::vector<FunctionEstimate> estimates(8, basicEstimate());
    IntervalObjective objective(std::move(estimates), kRates, 1.0);
    ChoiceSpaceGenerator space(objective);
    EXPECT_DEATH(space.enumerate(), "cap");
}

// --- ObservedStats ----------------------------------------------------------------

TEST(ObservedStats, FallsBackToProfileThenLearns)
{
    trace::FunctionProfile profile;
    profile.id = 0;
    profile.exec[0] = 5.0;
    profile.coldStart[0] = 7.0;
    profile.decompress[0] = 1.5;

    ObservedStats stats(1);
    auto estimate = stats.estimate(profile, 100.0, 10.0);
    EXPECT_DOUBLE_EQ(estimate.exec[0], 5.0);
    EXPECT_DOUBLE_EQ(estimate.coldStart[0], 7.0);

    metrics::InvocationRecord record;
    record.function = 0;
    record.exec = 3.0;
    record.startup = 4.0;
    record.start = StartType::Cold;
    record.nodeType = NodeType::X86;
    stats.update(record);

    estimate = stats.estimate(profile, 100.0, 10.0);
    EXPECT_DOUBLE_EQ(estimate.exec[0], 3.0);   // observed
    EXPECT_DOUBLE_EQ(estimate.coldStart[0], 4.0);
    EXPECT_DOUBLE_EQ(estimate.decompress[0], 1.5); // still profile
    EXPECT_DOUBLE_EQ(estimate.pest, 100.0);
    EXPECT_DOUBLE_EQ(estimate.sigma, 10.0);
}

TEST(ObservedStats, SeparatesArchitectures)
{
    trace::FunctionProfile profile;
    profile.id = 0;
    ObservedStats stats(1);
    metrics::InvocationRecord record;
    record.function = 0;
    record.exec = 2.0;
    record.start = StartType::Warm;
    record.nodeType = NodeType::ARM;
    stats.update(record);
    const auto estimate = stats.estimate(profile, -1.0, 0.0);
    EXPECT_DOUBLE_EQ(estimate.exec[1], 2.0);
    EXPECT_DOUBLE_EQ(estimate.exec[0], profile.exec[0]);
}

TEST(ObservedStats, CompressedStartupFeedsDecompress)
{
    trace::FunctionProfile profile;
    profile.id = 0;
    ObservedStats stats(1);
    metrics::InvocationRecord record;
    record.function = 0;
    record.exec = 2.0;
    record.startup = 0.8;
    record.start = StartType::WarmCompressed;
    record.nodeType = NodeType::X86;
    stats.update(record);
    const auto estimate = stats.estimate(profile, -1.0, 0.0);
    EXPECT_DOUBLE_EQ(estimate.decompress[0], 0.8);
}

// --- CodeCrunch configuration surface ------------------------------------------------

TEST(CodeCrunch, NameReflectsAblations)
{
    EXPECT_EQ(CodeCrunch().name(), "CodeCrunch");
    CodeCrunchConfig noSre;
    noSre.useSre = false;
    EXPECT_EQ(CodeCrunch(noSre).name(), "CodeCrunch-noSRE");
    CodeCrunchConfig noComp;
    noComp.useCompression = false;
    EXPECT_EQ(CodeCrunch(noComp).name(), "CodeCrunch-noComp");
    CodeCrunchConfig noSnap;
    noSnap.useSnapshot = false;
    EXPECT_EQ(CodeCrunch(noSnap).name(), "CodeCrunch-noSnapshot");
    CodeCrunchConfig x86;
    x86.archMode = ArchMode::X86Only;
    EXPECT_EQ(CodeCrunch(x86).name(), "CodeCrunch-x86");
    CodeCrunchConfig arm;
    arm.archMode = ArchMode::ArmOnly;
    EXPECT_EQ(CodeCrunch(arm).name(), "CodeCrunch-ARM");
    CodeCrunchConfig fixed;
    fixed.fixedKeepAlive = true;
    EXPECT_EQ(CodeCrunch(fixed).name(), "CodeCrunch-fixedKA");
    CodeCrunchConfig sla;
    sla.slaSlack = 0.2;
    EXPECT_EQ(CodeCrunch(sla).name(), "CodeCrunch-SLA");
}
