/**
 * @file
 * Robustness-layer tests for the distributed runner: deterministic
 * fault injection (chaos schedules, FaultySocket byte integrity),
 * LZ4 frame compression, the crash journal (round trip, torn tail,
 * malformed files), handshake rejection reasons, oversized-frame
 * connection drops, and end-to-end reconnect / mid-sweep catch-up
 * with real Master/WorkerBackends. The full-artifact invariants live
 * in ctest as dist_chaos_* / dist_resume_* (tools/golden_check.py).
 */
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <future>
#include <optional>
#include <string>
#include <thread>
#include <unistd.h>
#include <vector>

#include "common/rng.hpp"
#include "dist/chaos.hpp"
#include "dist/framing.hpp"
#include "dist/journal.hpp"
#include "dist/master.hpp"
#include "dist/protocol.hpp"
#include "dist/socket.hpp"
#include "dist/worker.hpp"
#include "obs/stats.hpp"

using namespace codecrunch;
using namespace codecrunch::dist;
using codecrunch::runner::ExecBackend;

// --- Chaos schedules ----------------------------------------------------

namespace {

/** Flatten a fixed op sequence into a comparable decision trace. */
std::string
scheduleOf(FaultInjector injector, int ops)
{
    std::string trace;
    for (int i = 0; i < ops; ++i) {
        const auto s = injector.onSend(1000);
        const auto r = injector.onRecv(4096);
        trace += std::to_string(s.firstChunk) + "/" +
                 std::to_string(s.delayMicros) + "/" +
                 (s.disconnect ? "X" : "-") + ";" +
                 std::to_string(r.capBytes) + "/" +
                 std::to_string(r.delayMicros) + "/" +
                 (r.disconnect ? "X" : "-") + ";" +
                 (injector.refuseConnect() ? "R" : "-") + "|";
    }
    return trace;
}

} // namespace

TEST(Chaos, SameSeedProducesIdenticalSchedule)
{
    const ChaosSpec heavy = chaosProfile("heavy");
    const std::string a =
        scheduleOf(FaultInjector(heavy, 42, 1, 0), 200);
    const std::string b =
        scheduleOf(FaultInjector(heavy, 42, 1, 0), 200);
    EXPECT_EQ(a, b);
}

TEST(Chaos, SeedSaltAndConnectionSelectIndependentStreams)
{
    const ChaosSpec heavy = chaosProfile("heavy");
    const std::string base =
        scheduleOf(FaultInjector(heavy, 42, 1, 0), 200);
    EXPECT_NE(base, scheduleOf(FaultInjector(heavy, 43, 1, 0), 200));
    EXPECT_NE(base, scheduleOf(FaultInjector(heavy, 42, 2, 0), 200));
    EXPECT_NE(base, scheduleOf(FaultInjector(heavy, 42, 1, 1), 200));
}

TEST(Chaos, ProfilesAndUnknownNames)
{
    EXPECT_FALSE(chaosProfile("off").enabled());
    EXPECT_FALSE(chaosProfile("").enabled());
    EXPECT_TRUE(chaosProfile("light").enabled());
    EXPECT_TRUE(chaosProfile("heavy").enabled());
    EXPECT_GT(chaosProfile("heavy").disconnectProb,
              chaosProfile("light").disconnectProb);
    EXPECT_EXIT(chaosProfile("bogus"),
                testing::ExitedWithCode(1), "off\\|light\\|heavy");
}

TEST(Chaos, DisabledSpecPassesOperationsThroughUntouched)
{
    FaultInjector off(ChaosSpec{}, 1, 0, 0);
    const auto s = off.onSend(777);
    EXPECT_EQ(s.firstChunk, 777u);
    EXPECT_EQ(s.delayMicros, 0u);
    EXPECT_FALSE(s.disconnect);
    const auto r = off.onRecv(4096);
    EXPECT_EQ(r.capBytes, 4096u);
    EXPECT_FALSE(r.disconnect);
    EXPECT_FALSE(off.refuseConnect());
}

// --- FaultySocket over real loopback ------------------------------------

TEST(Chaos, FaultySocketDeliversEveryByteIntactUnderChaos)
{
    TcpListener listener;
    listener.listen(0);
    TcpStream client =
        connectTcp("127.0.0.1", listener.port(), 15.0);
    TcpStream server = listener.accept();
    ASSERT_TRUE(client.valid());
    ASSERT_TRUE(server.valid());

    // Heavy partial I/O but no disconnects: integrity, not loss.
    ChaosSpec spec;
    spec.shortWriteProb = 0.6;
    spec.shortReadProb = 0.6;
    spec.delayProb = 0.2;
    spec.maxDelayMicros = 200;
    FaultySocket chaotic;
    chaotic.adopt(std::move(client), FaultInjector(spec, 9, 0, 0));

    std::string message;
    Rng rng(123);
    for (int i = 0; i < 64 * 1024; ++i)
        message.push_back(static_cast<char>(rng.next() & 0xff));

    std::thread sender(
        [&] { ASSERT_TRUE(chaotic.sendAll(message)); });
    std::string received;
    char buffer[4096];
    while (received.size() < message.size()) {
        const long n = server.recvSome(buffer, sizeof(buffer));
        ASSERT_GT(n, 0);
        received.append(buffer, static_cast<std::size_t>(n));
    }
    sender.join();
    EXPECT_EQ(received, message);

    // And the chaotic receive direction: short reads cap each recv
    // but never drop or reorder a byte.
    std::thread replier(
        [&] { ASSERT_TRUE(server.sendAll(message)); });
    std::string echoed;
    while (echoed.size() < message.size()) {
        const long n = chaotic.recvSome(buffer, sizeof(buffer));
        ASSERT_GT(n, 0);
        echoed.append(buffer, static_cast<std::size_t>(n));
    }
    replier.join();
    EXPECT_EQ(echoed, message);
}

TEST(Chaos, DisconnectEveryNthOpCutsTheLinkDeterministically)
{
    TcpListener listener;
    listener.listen(0);
    TcpStream client =
        connectTcp("127.0.0.1", listener.port(), 15.0);
    TcpStream server = listener.accept();

    ChaosSpec spec;
    spec.disconnectEveryNthOp = 3;
    FaultySocket chaotic;
    chaotic.adopt(std::move(client), FaultInjector(spec, 1, 0, 0));

    EXPECT_TRUE(chaotic.sendAll("one"));
    EXPECT_TRUE(chaotic.sendAll("two"));
    EXPECT_FALSE(chaotic.sendAll("three")); // the 3rd op is cut
    EXPECT_FALSE(chaotic.valid());
    // The peer sees a real EOF after the torn prefix drains.
    std::string drained;
    char buffer[256];
    for (;;) {
        const long n = server.recvSome(buffer, sizeof(buffer));
        if (n <= 0)
            break;
        drained.append(buffer, static_cast<std::size_t>(n));
    }
    EXPECT_LT(drained.size(), std::string("onetwothree").size());
}

// --- LZ4 frame compression ----------------------------------------------

TEST(FramingLz4, CompressibleFrameRoundTripsSmaller)
{
    const std::string payload(32 * 1024, 'z');
    const std::string wire = encodeFrameLz4(8, payload);
    ASSERT_GT(wire.size(), 6u);
    EXPECT_EQ(static_cast<std::uint8_t>(wire[5]), kCodecLz4);
    EXPECT_LT(wire.size(), payload.size() / 2);

    FrameParser parser;
    parser.feed(wire);
    const auto frame = parser.next();
    ASSERT_TRUE(frame.has_value());
    EXPECT_EQ(frame->type, 8);
    EXPECT_EQ(frame->codec, kCodecLz4);
    EXPECT_EQ(frame->payload, payload);
}

TEST(FramingLz4, SmallFramesStayRaw)
{
    const std::string wire = encodeFrameLz4(8, "tiny");
    EXPECT_EQ(static_cast<std::uint8_t>(wire[5]), kCodecNone);
    FrameParser parser;
    parser.feed(wire);
    const auto frame = parser.next();
    ASSERT_TRUE(frame.has_value());
    EXPECT_EQ(frame->payload, "tiny");
    EXPECT_EQ(frame->codec, kCodecNone);
}

TEST(FramingLz4, IncompressiblePayloadFallsBackToRaw)
{
    std::string noise;
    Rng rng(7);
    for (std::size_t i = 0; i < 2 * kFrameCompressMinBytes; ++i)
        noise.push_back(static_cast<char>(rng.next() & 0xff));
    const std::string wire = encodeFrameLz4(8, noise);
    EXPECT_EQ(static_cast<std::uint8_t>(wire[5]), kCodecNone);
    FrameParser parser;
    parser.feed(wire);
    ASSERT_TRUE(parser.next().has_value());
}

TEST(FramingLz4, CorruptCompressedBodyIsRejected)
{
    const std::string payload(32 * 1024, 'z');
    std::string wire = encodeFrameLz4(8, payload);
    ASSERT_EQ(static_cast<std::uint8_t>(wire[5]), kCodecLz4);
    wire[wire.size() / 2] ^= 0x5a; // flip a bit mid-body
    FrameParser parser;
    parser.feed(wire);
    EXPECT_THROW(parser.next(), DecodeError);
}

TEST(FramingLz4, UnknownCodecByteIsRejected)
{
    std::string wire = encodeFrame(8, "payload");
    wire[5] = static_cast<char>(0x7f);
    FrameParser parser;
    parser.feed(wire);
    EXPECT_THROW(parser.next(), FramingError);
}

// --- Journal ------------------------------------------------------------

namespace {

struct TempPath {
    std::string path;
    explicit TempPath(const std::string& name)
        : path("/tmp/cc_journal_" + name + "_" +
               std::to_string(::getpid()))
    {
        std::remove(path.c_str());
    }
    ~TempPath() { std::remove(path.c_str()); }
};

std::string
sampleDelta()
{
    obs::Registry registry;
    const auto before = registry.snapshot(obs::StatScope::Sim);
    registry.counter("sim.test.jobs").add(1);
    return encodeStatsDelta(before,
                            registry.snapshot(obs::StatScope::Sim));
}

} // namespace

TEST(Journal, RecordsRoundTripThroughReplay)
{
    TempPath tmp("roundtrip");
    {
        JournalWriter writer;
        writer.open(tmp.path);
        writer.planBegin(0, "plan-a", 2, 0xfeedu);
        writer.job(0, 1, true, "job1", 101, "payload1",
                   sampleDelta());
        writer.job(0, 0, false, "job0", 100, "deterministic boom",
                   sampleDelta());
        writer.planEnd(0);
        writer.planBegin(1, "plan-b", 1, 0xbeefu);
    }
    const JournalReplay replay = readJournal(tmp.path);
    EXPECT_FALSE(replay.truncatedTail);
    EXPECT_EQ(replay.jobRecords, 2u);
    ASSERT_EQ(replay.plans.size(), 2u);
    const JournaledPlan& planA = replay.plans.at(0);
    EXPECT_EQ(planA.name, "plan-a");
    EXPECT_EQ(planA.jobCount, 2u);
    EXPECT_EQ(planA.fingerprint, 0xfeedu);
    EXPECT_TRUE(planA.completed);
    ASSERT_EQ(planA.jobs.size(), 2u);
    EXPECT_TRUE(planA.jobs.at(1).ok);
    EXPECT_EQ(planA.jobs.at(1).label, "job1");
    EXPECT_EQ(planA.jobs.at(1).seed, 101u);
    EXPECT_EQ(planA.jobs.at(1).payloadOrError, "payload1");
    EXPECT_FALSE(planA.jobs.at(0).ok);
    EXPECT_EQ(planA.jobs.at(0).payloadOrError,
              "deterministic boom");
    EXPECT_FALSE(replay.plans.at(1).completed);
}

TEST(Journal, TornTailRecordIsDroppedAndTruncatedOnReopen)
{
    TempPath tmp("torntail");
    {
        JournalWriter writer;
        writer.open(tmp.path);
        writer.planBegin(0, "plan", 2, 1);
        writer.job(0, 0, true, "job0", 100, "p0", sampleDelta());
        writer.job(0, 1, true, "job1", 101, "p1", sampleDelta());
    }
    // Tear the final record the way a crash mid-append would.
    const JournalReplay full = readJournal(tmp.path);
    ASSERT_EQ(full.jobRecords, 2u);
    ASSERT_TRUE(::truncate(tmp.path.c_str(),
                           static_cast<off_t>(full.validBytes - 5)) ==
                0);

    const JournalReplay torn = readJournal(tmp.path);
    EXPECT_TRUE(torn.truncatedTail);
    EXPECT_EQ(torn.jobRecords, 1u); // the torn job 1 is gone
    EXPECT_LT(torn.validBytes, full.validBytes);

    // Reopening at the valid prefix truncates the tail for good and
    // appends continue after the last complete record.
    {
        JournalWriter writer;
        writer.open(tmp.path, torn.validBytes);
        writer.job(0, 1, true, "job1", 101, "p1", sampleDelta());
        writer.planEnd(0);
    }
    const JournalReplay repaired = readJournal(tmp.path);
    EXPECT_FALSE(repaired.truncatedTail);
    EXPECT_EQ(repaired.jobRecords, 2u);
    EXPECT_TRUE(repaired.plans.at(0).completed);
}

TEST(Journal, MissingFileIsAnEmptyReplay)
{
    const JournalReplay replay =
        readJournal("/tmp/cc_journal_does_not_exist_anywhere");
    EXPECT_TRUE(replay.plans.empty());
    EXPECT_EQ(replay.jobRecords, 0u);
    EXPECT_EQ(replay.validBytes, 0u);
}

using JournalDeathTest = ::testing::Test;

TEST(JournalDeathTest, FileWithoutHeaderRecordIsFatal)
{
    TempPath tmp("noheader");
    {
        // A complete, well-framed record — but not a Header.
        std::FILE* f = std::fopen(tmp.path.c_str(), "wb");
        ASSERT_NE(f, nullptr);
        const std::string record = encodeFrame(
            static_cast<std::uint8_t>(JournalRecord::Job), "junk");
        std::fwrite(record.data(), 1, record.size(), f);
        std::fclose(f);
    }
    EXPECT_EXIT(readJournal(tmp.path),
                testing::ExitedWithCode(1), "header record");
}

// --- Handshake rejections and framing violations ------------------------

namespace {

std::vector<ExecBackend::SerializedJob>
trivialJobs(int count)
{
    std::vector<ExecBackend::SerializedJob> jobs;
    for (int i = 0; i < count; ++i) {
        ExecBackend::SerializedJob job;
        job.label = "job" + std::to_string(i);
        job.seed = static_cast<std::uint64_t>(100 + i);
        job.run = [i] { return "result" + std::to_string(i); };
        jobs.push_back(std::move(job));
    }
    return jobs;
}

/** Blocking read of one frame off a raw stream; nullopt on EOF. */
std::optional<Frame>
readOneFrame(TcpStream& stream, FrameParser& parser)
{
    for (;;) {
        if (auto frame = parser.next())
            return frame;
        char buffer[4096];
        const long n = stream.recvSome(buffer, sizeof(buffer));
        if (n <= 0)
            return std::nullopt;
        parser.feed(
            std::string_view(buffer, static_cast<std::size_t>(n)));
    }
}

} // namespace

TEST(EndToEnd, WorkerAheadOfMasterIsRejectedWithReason)
{
    MasterOptions options;
    options.port = 0;
    options.minWorkers = 1;
    options.connectTimeout = 30.0;
    MasterBackend master(options);
    const std::uint16_t port = master.port();

    std::vector<ExecBackend::JobOutcome> outcomes;
    std::thread masterThread([&] {
        outcomes = master.executePlan("ahead", trivialJobs(2),
                                      nullptr);
    });

    // A worker claiming to be past plans this master never ran (its
    // master restarted without --resume) must be turned away with the
    // real reason, not welcomed into an inconsistent sweep.
    {
        TcpStream ahead = connectTcp("127.0.0.1", port, 15.0);
        FrameParser parser;
        Hello hello;
        hello.pid = 99;
        hello.nextPlanSeq = 7;
        ASSERT_TRUE(ahead.sendAll(encodeFrame(
            static_cast<std::uint8_t>(MsgType::Hello),
            encodeHello(hello))));
        const auto reply = readOneFrame(ahead, parser);
        ASSERT_TRUE(reply.has_value());
        EXPECT_EQ(reply->type,
                  static_cast<std::uint8_t>(MsgType::HelloReject));
        const std::string reason =
            decodeText(reply->payload, "HelloReject");
        EXPECT_NE(reason.find("ahead of the master"),
                  std::string::npos);
        EXPECT_NE(reason.find("--resume"), std::string::npos);
    }

    // An oversized length prefix must drop the connection outright —
    // the master closes it before allocating anything.
    {
        TcpStream garbage = connectTcp("127.0.0.1", port, 15.0);
        ByteWriter writer;
        writer.u32(kMaxFrameBytes + 1);
        ASSERT_TRUE(garbage.sendAll(writer.bytes()));
        char buffer[64];
        EXPECT_LE(garbage.recvSome(buffer, sizeof(buffer)), 0L);
    }

    std::thread workerThread([&] {
        WorkerOptions workerOptions;
        workerOptions.host = "127.0.0.1";
        workerOptions.port = port;
        WorkerBackend worker(workerOptions);
        worker.executePlan("ahead", trivialJobs(2), nullptr);
    });
    masterThread.join();
    workerThread.join();
    ASSERT_EQ(outcomes.size(), 2u);
    EXPECT_EQ(outcomes[0].payload, "result0");
}

// --- Reconnect and catch-up end-to-end ----------------------------------

namespace {

/** Read frames off a scripted-master connection, skipping the worker's
 *  heartbeat/Bye noise; nullopt on EOF. */
std::optional<Frame>
readProtocolFrame(TcpStream& stream, FrameParser& parser)
{
    for (;;) {
        const auto frame = readOneFrame(stream, parser);
        if (!frame)
            return std::nullopt;
        const auto type = static_cast<MsgType>(frame->type);
        if (type == MsgType::Heartbeat || type == MsgType::Bye)
            continue;
        return frame;
    }
}

} // namespace

// Deterministic reconnect: a scripted master hands the WorkerBackend
// one job, then slams the connection shut mid-plan. The worker must
// redial (announcing reconnect=1 at its original nextPlanSeq), accept
// the re-sent active PlanBegin, finish the remaining job, and return
// the full outcome list — without re-running the job it already did.
// (Probabilistic chaos reconnects across real processes are covered by
// the dist_chaos_* ctest targets.)
TEST(EndToEnd, WorkerReconnectsAfterMidPlanCutAndResumes)
{
    TcpListener listener;
    listener.listen(0);

    std::atomic<int> jobRuns{0};
    auto makeJobs = [&jobRuns] {
        std::vector<ExecBackend::SerializedJob> jobs;
        for (int i = 0; i < 2; ++i) {
            ExecBackend::SerializedJob job;
            job.label = "job" + std::to_string(i);
            job.seed = static_cast<std::uint64_t>(100 + i);
            job.run = [&jobRuns, i] {
                ++jobRuns;
                return "result" + std::to_string(i);
            };
            jobs.push_back(std::move(job));
        }
        return jobs;
    };
    const std::uint64_t fingerprint =
        planFingerprint("cut", makeJobs());

    std::vector<ExecBackend::JobOutcome> workerOutcomes;
    std::uint32_t finalWorkerId = 0;
    std::thread workerThread([&] {
        WorkerOptions workerOptions;
        workerOptions.host = "127.0.0.1";
        workerOptions.port = listener.port();
        workerOptions.reconnectBackoffBase = 0.01;
        WorkerBackend worker(workerOptions);
        workerOutcomes =
            worker.executePlan("cut", makeJobs(), nullptr);
        finalWorkerId = worker.workerId();
    });

    auto handshake = [](TcpStream& conn, FrameParser& parser,
                        std::uint32_t workerId) -> Hello {
        const auto helloFrame = readProtocolFrame(conn, parser);
        EXPECT_TRUE(helloFrame.has_value());
        EXPECT_EQ(helloFrame->type,
                  static_cast<std::uint8_t>(MsgType::Hello));
        const Hello hello = decodeHello(helloFrame->payload);
        HelloAck ack;
        ack.workerId = workerId;
        EXPECT_TRUE(conn.sendAll(encodeFrame(
            static_cast<std::uint8_t>(MsgType::HelloAck),
            encodeHelloAck(ack))));
        PlanCatchUp catchUp;
        catchUp.fromSeq = hello.nextPlanSeq;
        EXPECT_TRUE(conn.sendAll(encodeFrame(
            static_cast<std::uint8_t>(MsgType::PlanCatchUp),
            encodePlanCatchUp(catchUp))));
        return hello;
    };

    PlanBegin begin;
    begin.planSeq = 0;
    begin.planName = "cut";
    begin.jobCount = 2;
    begin.fingerprint = fingerprint;
    const std::string beginFrame = encodeFrame(
        static_cast<std::uint8_t>(MsgType::PlanBegin),
        encodePlanBegin(begin));

    // Connection 1: handshake, start the plan, deal job 0, take its
    // result — then vanish, as a crashed network link would.
    {
        TcpStream conn = listener.accept();
        ASSERT_TRUE(conn.valid());
        FrameParser parser;
        const Hello hello = handshake(conn, parser, 1);
        EXPECT_EQ(hello.reconnect, 0u);
        EXPECT_EQ(hello.nextPlanSeq, 0u);
        ASSERT_TRUE(conn.sendAll(beginFrame));
        auto planAck = readProtocolFrame(conn, parser);
        ASSERT_TRUE(planAck.has_value());
        EXPECT_EQ(planAck->type,
                  static_cast<std::uint8_t>(MsgType::PlanAck));
        auto request = readProtocolFrame(conn, parser);
        ASSERT_TRUE(request.has_value());
        EXPECT_EQ(request->type,
                  static_cast<std::uint8_t>(MsgType::JobRequest));
        JobAssign assign;
        assign.planSeq = 0;
        assign.jobIndex = 0;
        ASSERT_TRUE(conn.sendAll(encodeFrame(
            static_cast<std::uint8_t>(MsgType::JobAssign),
            encodeJobAssign(assign))));
        auto result = readProtocolFrame(conn, parser);
        ASSERT_TRUE(result.has_value());
        EXPECT_EQ(result->type,
                  static_cast<std::uint8_t>(MsgType::JobResult));
        EXPECT_EQ(decodeJobResult(result->payload).payloadOrError,
                  "result0");
        conn.close(); // mid-plan cut
    }

    // Connection 2: the worker's redial. It must identify itself as a
    // reconnect still expecting plan 0, re-ack the re-sent PlanBegin,
    // and pull only the remaining job.
    {
        TcpStream conn = listener.accept();
        ASSERT_TRUE(conn.valid());
        FrameParser parser;
        const Hello hello = handshake(conn, parser, 2);
        EXPECT_EQ(hello.reconnect, 1u);
        EXPECT_EQ(hello.nextPlanSeq, 0u);
        ASSERT_TRUE(conn.sendAll(beginFrame));
        auto planAck = readProtocolFrame(conn, parser);
        ASSERT_TRUE(planAck.has_value());
        EXPECT_EQ(planAck->type,
                  static_cast<std::uint8_t>(MsgType::PlanAck));
        auto request = readProtocolFrame(conn, parser);
        ASSERT_TRUE(request.has_value());
        EXPECT_EQ(request->type,
                  static_cast<std::uint8_t>(MsgType::JobRequest));
        JobAssign assign;
        assign.planSeq = 0;
        assign.jobIndex = 1;
        ASSERT_TRUE(conn.sendAll(encodeFrame(
            static_cast<std::uint8_t>(MsgType::JobAssign),
            encodeJobAssign(assign))));
        auto result = readProtocolFrame(conn, parser);
        ASSERT_TRUE(result.has_value());
        EXPECT_EQ(result->type,
                  static_cast<std::uint8_t>(MsgType::JobResult));
        EXPECT_EQ(decodeJobResult(result->payload).payloadOrError,
                  "result1");

        PlanResults results;
        results.planSeq = 0;
        results.outcomes.push_back(
            ExecBackend::JobOutcome{"result0", ""});
        results.outcomes.push_back(
            ExecBackend::JobOutcome{"result1", ""});
        ASSERT_TRUE(conn.sendAll(encodeFrame(
            static_cast<std::uint8_t>(MsgType::PlanResults),
            encodePlanResults(results))));

        workerThread.join();
        // Drain the worker's goodbye so its dtor send succeeds.
        readProtocolFrame(conn, parser);
    }

    EXPECT_EQ(jobRuns.load(), 2); // job 0 was not re-run
    EXPECT_EQ(finalWorkerId, 2u);
    ASSERT_EQ(workerOutcomes.size(), 2u);
    EXPECT_EQ(workerOutcomes[0].payload, "result0");
    EXPECT_EQ(workerOutcomes[1].payload, "result1");
}

// A WorkerBackend that joins after a plan already completed is served
// that plan from PlanCatchUp without a single wire job, then runs the
// next plan live alongside the original worker.
TEST(EndToEnd, LateJoinerCatchesUpOnCompletedPlansThenRunsLive)
{
    MasterOptions options;
    options.port = 0;
    options.minWorkers = 1;
    options.connectTimeout = 30.0;
    MasterBackend master(options);
    const std::uint16_t port = master.port();

    std::promise<void> planZeroDone;
    std::shared_future<void> planZeroDoneFuture(
        planZeroDone.get_future());

    std::vector<ExecBackend::JobOutcome> master0, master1;
    std::thread masterThread([&] {
        master0 =
            master.executePlan("first", trivialJobs(3), nullptr);
        planZeroDone.set_value();
        master1 =
            master.executePlan("second", trivialJobs(2), nullptr);
    });

    std::vector<ExecBackend::JobOutcome> a0, a1;
    std::thread workerAThread([&] {
        WorkerOptions workerOptions;
        workerOptions.host = "127.0.0.1";
        workerOptions.port = port;
        WorkerBackend worker(workerOptions);
        a0 = worker.executePlan("first", trivialJobs(3), nullptr);
        a1 = worker.executePlan("second", trivialJobs(2), nullptr);
    });

    std::vector<ExecBackend::JobOutcome> b0, b1;
    std::thread workerBThread([&] {
        planZeroDoneFuture.wait();
        WorkerOptions workerOptions;
        workerOptions.host = "127.0.0.1";
        workerOptions.port = port;
        WorkerBackend worker(workerOptions);
        // Plan "first" finished before this worker existed: served
        // locally from the catch-up buffer, fingerprint-checked.
        b0 = worker.executePlan("first", trivialJobs(3), nullptr);
        b1 = worker.executePlan("second", trivialJobs(2), nullptr);
    });

    masterThread.join();
    workerAThread.join();
    workerBThread.join();

    ASSERT_EQ(master0.size(), 3u);
    ASSERT_EQ(master1.size(), 2u);
    ASSERT_EQ(b0.size(), master0.size());
    for (std::size_t i = 0; i < master0.size(); ++i) {
        EXPECT_EQ(b0[i].payload, master0[i].payload);
        EXPECT_EQ(a0[i].payload, master0[i].payload);
    }
    ASSERT_EQ(b1.size(), master1.size());
    for (std::size_t i = 0; i < master1.size(); ++i) {
        EXPECT_EQ(b1[i].payload, master1[i].payload);
        EXPECT_EQ(a1[i].payload, master1[i].payload);
    }
}

// A resumed master whose journal already covers a whole plan returns
// it without dispatching anything — no workers are even connected.
TEST(EndToEnd, ResumedMasterServesFullyJournaledPlanWithoutWorkers)
{
    TempPath tmp("resume");
    auto jobs = trivialJobs(2);
    const std::uint64_t fingerprint =
        planFingerprint("journaled", jobs);
    {
        JournalWriter writer;
        writer.open(tmp.path);
        writer.planBegin(0, "journaled", 2, fingerprint);
        writer.job(0, 0, true, jobs[0].label, jobs[0].seed,
                   "payload0", sampleDelta());
        writer.job(0, 1, false, jobs[1].label, jobs[1].seed,
                   "it broke", "");
        writer.planEnd(0);
    }

    MasterOptions options;
    options.port = 0;
    options.minWorkers = 1;
    options.journalPath = tmp.path;
    options.resume = true;
    MasterBackend master(options);

    const auto outcomes =
        master.executePlan("journaled", std::move(jobs), nullptr);
    ASSERT_EQ(outcomes.size(), 2u);
    EXPECT_TRUE(outcomes[0].ok());
    EXPECT_EQ(outcomes[0].payload, "payload0");
    EXPECT_FALSE(outcomes[1].ok());
    EXPECT_EQ(outcomes[1].error, "it broke");
}

using ResumeDeathTest = ::testing::Test;

TEST(ResumeDeathTest, ReplayedPlanWithWrongFingerprintIsFatal)
{
    TempPath tmp("resume_fp");
    {
        JournalWriter writer;
        writer.open(tmp.path);
        writer.planBegin(0, "journaled", 1, 0xdeadbeefu);
        writer.job(0, 0, true, "job0", 100, "payload0", "");
        writer.planEnd(0);
    }
    MasterOptions options;
    options.port = 0;
    options.journalPath = tmp.path;
    options.resume = true;
    MasterBackend master(options);
    // The journal was written by a different plan shape; resuming
    // must refuse to splice its results into this sweep.
    EXPECT_EXIT(
        master.executePlan("journaled", trivialJobs(1), nullptr),
        testing::ExitedWithCode(1), "fingerprint");
}
