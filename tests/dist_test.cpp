/**
 * @file
 * Distributed-runner tests: framing (round trip, truncation, garbage,
 * oversize), message codecs, the job-result codec, plan fingerprints,
 * stats-delta shipping, and an in-process master/worker end-to-end run
 * including the version-mismatch handshake rejection. The full
 * kill-a-worker-mid-sweep artifact check lives in ctest as
 * dist_identity_* / dist_kill_* (tools/golden_check.py --mode dist*).
 */
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "dist/framing.hpp"
#include "dist/master.hpp"
#include "dist/protocol.hpp"
#include "dist/socket.hpp"
#include "dist/worker.hpp"
#include "obs/stats.hpp"
#include "runner/serial.hpp"

using namespace codecrunch;
using namespace codecrunch::dist;
using codecrunch::runner::ExecBackend;
using codecrunch::runner::JobCodec;

// --- Framing ------------------------------------------------------------

TEST(Framing, RoundTripsAcrossPartialFeeds)
{
    const std::string frame = encodeFrame(7, "hello");
    FrameParser parser;
    // Feed byte by byte: no frame until the last byte arrives.
    for (std::size_t i = 0; i + 1 < frame.size(); ++i) {
        parser.feed(std::string_view(&frame[i], 1));
        EXPECT_FALSE(parser.next().has_value());
    }
    parser.feed(std::string_view(&frame.back(), 1));
    const auto out = parser.next();
    ASSERT_TRUE(out.has_value());
    EXPECT_EQ(out->type, 7);
    EXPECT_EQ(out->payload, "hello");
    EXPECT_FALSE(parser.next().has_value());
    EXPECT_EQ(parser.pendingBytes(), 0u);
}

TEST(Framing, ManyFramesInOneFeed)
{
    std::string wire;
    for (int i = 0; i < 5; ++i)
        wire += encodeFrame(static_cast<std::uint8_t>(i),
                            std::string(i, 'x'));
    FrameParser parser;
    parser.feed(wire);
    for (int i = 0; i < 5; ++i) {
        const auto frame = parser.next();
        ASSERT_TRUE(frame.has_value());
        EXPECT_EQ(frame->type, i);
        EXPECT_EQ(frame->payload.size(),
                  static_cast<std::size_t>(i));
    }
    EXPECT_FALSE(parser.next().has_value());
}

TEST(Framing, CursorSurvivesCompactionAcrossManyFrames)
{
    // Push enough consumed bytes through the parser to cross its
    // internal compaction threshold several times, interleaving
    // feeds and pops so frames straddle compaction points.
    FrameParser parser;
    const std::string payload(1031, 'p');
    std::string wire;
    for (int i = 0; i < 400; ++i)
        wire += encodeFrame(static_cast<std::uint8_t>(i % 251),
                            payload);
    std::size_t popped = 0;
    for (std::size_t at = 0; at < wire.size();) {
        const std::size_t chunk =
            std::min<std::size_t>(4096, wire.size() - at);
        parser.feed(std::string_view(wire).substr(at, chunk));
        at += chunk;
        while (auto frame = parser.next()) {
            EXPECT_EQ(frame->type,
                      static_cast<std::uint8_t>(popped % 251));
            EXPECT_EQ(frame->payload, payload);
            ++popped;
        }
    }
    EXPECT_EQ(popped, 400u);
    EXPECT_EQ(parser.pendingBytes(), 0u);
}

TEST(Framing, ZeroLengthFrameIsRejected)
{
    FrameParser parser;
    parser.feed(std::string(5, '\0')); // length 0 + one junk byte
    EXPECT_THROW(parser.next(), FramingError);
}

TEST(Framing, OversizedLengthIsRejectedBeforeAllocation)
{
    ByteWriter writer;
    writer.u32(kMaxFrameBytes + 1);
    FrameParser parser;
    parser.feed(writer.bytes());
    EXPECT_THROW(parser.next(), FramingError);
}

TEST(Framing, OversizedPayloadCannotBeEncoded)
{
    // Encoding checks the bound too, so a huge result fails loudly on
    // the sender instead of poisoning the stream.
    EXPECT_THROW(
        encodeFrame(1, std::string_view(nullptr, kMaxFrameBytes)),
        FramingError);
}

// --- Message codecs -----------------------------------------------------

TEST(Protocol, HelloRoundTrip)
{
    Hello in;
    in.pid = 4242;
    in.connectAttempts = 3;
    const Hello out = decodeHello(encodeHello(in));
    EXPECT_EQ(out.magic, kMagic);
    EXPECT_EQ(out.version, kProtocolVersion);
    EXPECT_EQ(out.pid, 4242u);
    EXPECT_EQ(out.connectAttempts, 3u);
}

TEST(Protocol, TruncatedAndOversizedPayloadsAreRejected)
{
    const std::string hello = encodeHello(Hello{});
    EXPECT_THROW(
        decodeHello(std::string_view(hello).substr(0, 5)),
        DecodeError);
    EXPECT_THROW(decodeHello(hello + "x"), DecodeError);

    PlanBegin begin;
    begin.planName = "p";
    const std::string plan = encodePlanBegin(begin);
    EXPECT_THROW(
        decodePlanBegin(std::string_view(plan).substr(0, 9)),
        DecodeError);
    EXPECT_THROW(decodeJobResult("garbage"), DecodeError);
}

TEST(Protocol, PlanResultsRoundTrip)
{
    PlanResults in;
    in.planSeq = 9;
    in.outcomes.push_back(ExecBackend::JobOutcome{"payload", ""});
    in.outcomes.push_back(ExecBackend::JobOutcome{"", "it broke"});
    const PlanResults out = decodePlanResults(encodePlanResults(in));
    EXPECT_EQ(out.planSeq, 9u);
    ASSERT_EQ(out.outcomes.size(), 2u);
    EXPECT_TRUE(out.outcomes[0].ok());
    EXPECT_EQ(out.outcomes[0].payload, "payload");
    EXPECT_FALSE(out.outcomes[1].ok());
    EXPECT_EQ(out.outcomes[1].error, "it broke");
}

// --- Job-result codec ---------------------------------------------------

namespace {

enum class Kind : std::uint8_t { A = 1, B = 7 };

struct Inner {
    std::string tag;
    std::vector<double> values;

    template <typename V>
    void
    visitFields(V&& v)
    {
        v(tag);
        v(values);
    }
};

struct Outer {
    bool flag = false;
    Kind kind = Kind::A;
    std::int32_t count = 0;
    double exact = 0.0;
    std::vector<Inner> inners;

    template <typename V>
    void
    visitFields(V&& v)
    {
        v(flag);
        v(kind);
        v(count);
        v(exact);
        v(inners);
    }
};

} // namespace

TEST(JobCodec, NestedAggregateRoundTripsExactly)
{
    Outer in;
    in.flag = true;
    in.kind = Kind::B;
    in.count = -12345;
    in.exact = -0.1 + 0.3; // a value with an untidy bit pattern
    in.inners.push_back(Inner{"x", {1.5, -0.0, 1e-308}});
    in.inners.push_back(Inner{"", {}});
    const Outer out = JobCodec<Outer>::decode(
        JobCodec<Outer>::encode(in));
    EXPECT_EQ(out.flag, true);
    EXPECT_EQ(out.kind, Kind::B);
    EXPECT_EQ(out.count, -12345);
    // Bit-exact, not approximately equal.
    EXPECT_EQ(std::memcmp(&out.exact, &in.exact, sizeof(double)), 0);
    ASSERT_EQ(out.inners.size(), 2u);
    EXPECT_EQ(out.inners[0].tag, "x");
    EXPECT_EQ(out.inners[0].values, in.inners[0].values);
    EXPECT_TRUE(std::signbit(out.inners[0].values[1]));
}

TEST(JobCodec, GarbagePayloadsAreRejected)
{
    const std::string good = JobCodec<Outer>::encode(Outer{});
    EXPECT_THROW(JobCodec<Outer>::decode(
                     std::string_view(good).substr(0, 3)),
                 DecodeError);
    EXPECT_THROW(JobCodec<Outer>::decode(good + "trailing"),
                 DecodeError);
    // An absurd vector length prefix must throw, not allocate.
    ByteWriter writer;
    writer.u8(0);                      // flag
    writer.u64(1);                     // kind
    writer.i64(0);                     // count
    writer.f64(0.0);                   // exact
    writer.u64(0xffffffffffffull);     // inners length: garbage
    EXPECT_THROW(JobCodec<Outer>::decode(writer.bytes()),
                 DecodeError);
}

TEST(JobCodec, AvailabilityTraitSeesThroughVectors)
{
    static_assert(runner::kJobCodecAvailable<Outer>);
    static_assert(runner::kJobCodecAvailable<double>);
    static_assert(
        runner::kJobCodecAvailable<std::vector<std::string>>);
    struct NotSerializable {
        int* pointer = nullptr;
    };
    static_assert(!runner::kJobCodecAvailable<NotSerializable>);
    static_assert(
        !runner::kJobCodecAvailable<std::vector<NotSerializable>>);
    SUCCEED();
}

// --- Plan fingerprint ---------------------------------------------------

namespace {

std::vector<ExecBackend::SerializedJob>
jobsNamed(std::vector<std::pair<std::string, std::uint64_t>> specs)
{
    std::vector<ExecBackend::SerializedJob> jobs;
    for (auto& [label, seed] : specs) {
        ExecBackend::SerializedJob job;
        job.label = label;
        job.seed = seed;
        jobs.push_back(std::move(job));
    }
    return jobs;
}

} // namespace

TEST(Protocol, FingerprintIsSensitiveToPlanIdentity)
{
    const auto base = jobsNamed({{"a", 1}, {"b", 2}});
    const std::uint64_t fp = planFingerprint("plan", base);
    EXPECT_EQ(fp, planFingerprint("plan", base)); // stable
    EXPECT_NE(fp, planFingerprint("nalp", base));
    EXPECT_NE(fp,
              planFingerprint("plan", jobsNamed({{"a", 1}})));
    EXPECT_NE(fp, planFingerprint(
                      "plan", jobsNamed({{"a", 1}, {"b", 3}})));
    EXPECT_NE(fp, planFingerprint(
                      "plan", jobsNamed({{"b", 2}, {"a", 1}})));
}

// --- Stats deltas -------------------------------------------------------

TEST(Protocol, StatsDeltaShipsExactContributions)
{
    obs::Registry workerSide;
    const auto empty = workerSide.snapshot(obs::StatScope::Sim);
    workerSide.counter("sim.test.hits").add(7);
    workerSide.counter("sim.test.zero"); // registered, never fired
    workerSide.gauge("sim.test.peak").observe(2.5);
    workerSide
        .histogram("sim.test.lat", {0.1, 1.0})
        .observe(0.05);
    const auto after = workerSide.snapshot(obs::StatScope::Sim);

    obs::Registry masterSide;
    applyStatsDelta(encodeStatsDelta(empty, after), masterSide);
    // Apply twice from a fresh before-snapshot of the same job to
    // model two jobs with identical contributions: counters add,
    // gauges max-merge.
    applyStatsDelta(encodeStatsDelta(empty, after), masterSide);

    const auto merged = masterSide.snapshot(obs::StatScope::Sim);
    ASSERT_EQ(merged.counters.size(), 2u);
    EXPECT_EQ(merged.counters[0].first, "sim.test.hits");
    EXPECT_EQ(merged.counters[0].second, 14u);
    // The zero-valued instrument still registered (artifact parity).
    EXPECT_EQ(merged.counters[1].first, "sim.test.zero");
    EXPECT_EQ(merged.counters[1].second, 0u);
    ASSERT_EQ(merged.gauges.size(), 1u);
    EXPECT_EQ(merged.gauges[0].second, 2.5);
    ASSERT_EQ(merged.histograms.size(), 1u);
    EXPECT_EQ(merged.histograms[0].second.count, 2u);
    EXPECT_EQ(merged.histograms[0].second.counts[0], 2u);
}

TEST(Protocol, StatsDeltaRejectsGarbage)
{
    obs::Registry registry;
    EXPECT_THROW(applyStatsDelta("junk", registry), DecodeError);
}

// --- End-to-end master/worker ------------------------------------------

namespace {

std::vector<ExecBackend::SerializedJob>
runnableJobs()
{
    std::vector<ExecBackend::SerializedJob> jobs;
    for (int i = 0; i < 6; ++i) {
        ExecBackend::SerializedJob job;
        job.label = "job" + std::to_string(i);
        job.seed = static_cast<std::uint64_t>(100 + i);
        job.run = [i] {
            if (i == 4)
                throw std::runtime_error("deterministic boom");
            return "result" + std::to_string(i);
        };
        jobs.push_back(std::move(job));
    }
    return jobs;
}

} // namespace

TEST(EndToEnd, MasterAndWorkerExchangeJobsAndRejectBadVersions)
{
    MasterOptions options;
    options.port = 0;
    options.minWorkers = 1;
    options.connectTimeout = 30.0;
    MasterBackend master(options);
    const std::uint16_t port = master.port();

    std::vector<ExecBackend::JobOutcome> masterOutcomes;
    std::thread masterThread([&] {
        masterOutcomes =
            master.executePlan("e2e", runnableJobs(), nullptr);
    });

    // A wrong-version handshake must be answered with HelloReject.
    {
        TcpStream bad = connectTcp("127.0.0.1", port, 15.0);
        Hello hello;
        hello.version = kProtocolVersion + 1000;
        ASSERT_TRUE(bad.sendAll(encodeFrame(
            static_cast<std::uint8_t>(MsgType::Hello),
            encodeHello(hello))));
        FrameParser parser;
        std::optional<Frame> reply;
        while (!reply) {
            char buffer[4096];
            const long n = bad.recvSome(buffer, sizeof(buffer));
            ASSERT_GT(n, 0);
            parser.feed(std::string_view(
                buffer, static_cast<std::size_t>(n)));
            reply = parser.next();
        }
        EXPECT_EQ(reply->type,
                  static_cast<std::uint8_t>(MsgType::HelloReject));
        EXPECT_NE(decodeText(reply->payload, "HelloReject")
                      .find("version"),
                  std::string::npos);
    }

    // A real worker joins, executes the same plan, and receives the
    // identical ordered outcome list (lockstep broadcast).
    std::vector<ExecBackend::JobOutcome> workerOutcomes;
    std::thread workerThread([&] {
        WorkerOptions workerOptions;
        workerOptions.host = "127.0.0.1";
        workerOptions.port = port;
        WorkerBackend worker(workerOptions);
        EXPECT_GT(worker.workerId(), 0u);
        workerOutcomes =
            worker.executePlan("e2e", runnableJobs(), nullptr);
    });

    masterThread.join();
    workerThread.join();

    ASSERT_EQ(masterOutcomes.size(), 6u);
    for (int i = 0; i < 6; ++i) {
        if (i == 4) {
            EXPECT_FALSE(masterOutcomes[i].ok());
            EXPECT_NE(masterOutcomes[i].error.find("boom"),
                      std::string::npos);
        } else {
            EXPECT_TRUE(masterOutcomes[i].ok());
            EXPECT_EQ(masterOutcomes[i].payload,
                      "result" + std::to_string(i));
        }
    }
    ASSERT_EQ(workerOutcomes.size(), masterOutcomes.size());
    for (std::size_t i = 0; i < masterOutcomes.size(); ++i) {
        EXPECT_EQ(workerOutcomes[i].payload,
                  masterOutcomes[i].payload);
        EXPECT_EQ(workerOutcomes[i].error,
                  masterOutcomes[i].error);
    }
}

namespace {

/** Blocking read of one frame off a raw stream; nullopt on EOF. */
std::optional<Frame>
readOneFrame(TcpStream& stream, FrameParser& parser)
{
    for (;;) {
        if (auto frame = parser.next())
            return frame;
        char buffer[4096];
        const long n = stream.recvSome(buffer, sizeof(buffer));
        if (n <= 0)
            return std::nullopt;
        parser.feed(
            std::string_view(buffer, static_cast<std::size_t>(n)));
    }
}

} // namespace

// Regression for the end-of-plan deadlock: a worker dies holding the
// last outstanding job *after* the pending queue drained, so the
// surviving worker is already parked on an unanswered JobRequest and
// will never ask again. The master must hand the requeued job to the
// parked survivor, or executePlan spins forever. Also checks that a
// worker joining mid-plan is welcomed with the v2 catch-up handshake
// (empty PlanCatchUp + the active PlanBegin) instead of rejected.
TEST(EndToEnd, RequeueAfterLateWorkerLossWakesParkedWorker)
{
    constexpr int kJobs = 6;
    MasterOptions options;
    options.port = 0;
    options.minWorkers = 2;
    options.connectTimeout = 30.0;
    MasterBackend master(options);
    const std::uint16_t port = master.port();

    std::atomic<int> survivorRuns{0};
    auto makeJobs = [&survivorRuns] {
        std::vector<ExecBackend::SerializedJob> jobs;
        for (int i = 0; i < kJobs; ++i) {
            ExecBackend::SerializedJob job;
            job.label = "job" + std::to_string(i);
            job.seed = static_cast<std::uint64_t>(100 + i);
            job.run = [&survivorRuns, i] {
                // Slow enough that the victim's JobRequest wins a
                // job before the survivor drains the whole queue.
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(20));
                ++survivorRuns;
                return "result" + std::to_string(i);
            };
            jobs.push_back(std::move(job));
        }
        return jobs;
    };

    std::vector<ExecBackend::JobOutcome> masterOutcomes;
    std::thread masterThread([&] {
        masterOutcomes =
            master.executePlan("late-loss", makeJobs(), nullptr);
    });

    // The victim is a hand-rolled worker: it grabs one job, waits for
    // the survivor to drain everything else and park, then vanishes
    // with the job still in flight — the end-of-plan loss shape.
    std::thread victimThread([&] {
        TcpStream victim = connectTcp("127.0.0.1", port, 15.0);
        FrameParser parser;
        Hello hello;
        hello.pid = 1;
        ASSERT_TRUE(victim.sendAll(encodeFrame(
            static_cast<std::uint8_t>(MsgType::Hello),
            encodeHello(hello))));
        auto ack = readOneFrame(victim, parser);
        ASSERT_TRUE(ack.has_value());
        ASSERT_EQ(ack->type,
                  static_cast<std::uint8_t>(MsgType::HelloAck));
        auto catchUp = readOneFrame(victim, parser);
        ASSERT_TRUE(catchUp.has_value());
        ASSERT_EQ(catchUp->type,
                  static_cast<std::uint8_t>(MsgType::PlanCatchUp));
        auto begin = readOneFrame(victim, parser);
        ASSERT_TRUE(begin.has_value());
        ASSERT_EQ(begin->type,
                  static_cast<std::uint8_t>(MsgType::PlanBegin));
        const PlanBegin planBegin =
            decodePlanBegin(begin->payload);
        ASSERT_TRUE(victim.sendAll(encodeFrame(
            static_cast<std::uint8_t>(MsgType::PlanAck),
            encodeSeqOnly(planBegin.planSeq))));
        ASSERT_TRUE(victim.sendAll(encodeFrame(
            static_cast<std::uint8_t>(MsgType::JobRequest),
            encodeSeqOnly(planBegin.planSeq))));
        auto assign = readOneFrame(victim, parser);
        ASSERT_TRUE(assign.has_value());
        ASSERT_EQ(assign->type,
                  static_cast<std::uint8_t>(MsgType::JobAssign));
        while (survivorRuns.load() < kJobs - 1)
            std::this_thread::sleep_for(
                std::chrono::milliseconds(5));
        // Let the survivor's final JobRequest reach the master and
        // park before the victim disappears.
        std::this_thread::sleep_for(std::chrono::milliseconds(300));

        // Mid-plan late joiner: catch-up handshake — no completed
        // plans yet, so an empty PlanCatchUp followed by the active
        // plan's PlanBegin so it could start pulling immediately.
        TcpStream late = connectTcp("127.0.0.1", port, 15.0);
        FrameParser lateParser;
        Hello lateHello;
        lateHello.pid = 2;
        ASSERT_TRUE(late.sendAll(encodeFrame(
            static_cast<std::uint8_t>(MsgType::Hello),
            encodeHello(lateHello))));
        auto lateAck = readOneFrame(late, lateParser);
        ASSERT_TRUE(lateAck.has_value());
        EXPECT_EQ(lateAck->type,
                  static_cast<std::uint8_t>(MsgType::HelloAck));
        auto lateCatchUp = readOneFrame(late, lateParser);
        ASSERT_TRUE(lateCatchUp.has_value());
        ASSERT_EQ(lateCatchUp->type,
                  static_cast<std::uint8_t>(MsgType::PlanCatchUp));
        const PlanCatchUp cu =
            decodePlanCatchUp(lateCatchUp->payload);
        EXPECT_EQ(cu.fromSeq, 0u);
        EXPECT_TRUE(cu.entries.empty());
        auto lateBegin = readOneFrame(late, lateParser);
        ASSERT_TRUE(lateBegin.has_value());
        EXPECT_EQ(lateBegin->type,
                  static_cast<std::uint8_t>(MsgType::PlanBegin));
        EXPECT_EQ(decodePlanBegin(lateBegin->payload).planSeq,
                  planBegin.planSeq);
        late.close();

        victim.close(); // EOF: the held job must be re-dispatched
    });

    std::vector<ExecBackend::JobOutcome> workerOutcomes;
    std::thread workerThread([&] {
        WorkerOptions workerOptions;
        workerOptions.host = "127.0.0.1";
        workerOptions.port = port;
        WorkerBackend worker(workerOptions);
        workerOutcomes =
            worker.executePlan("late-loss", makeJobs(), nullptr);
    });

    masterThread.join();
    workerThread.join();
    victimThread.join();

    // The survivor ran every job, including the victim's requeue.
    EXPECT_EQ(survivorRuns.load(), kJobs);
    ASSERT_EQ(masterOutcomes.size(),
              static_cast<std::size_t>(kJobs));
    for (int i = 0; i < kJobs; ++i) {
        EXPECT_TRUE(masterOutcomes[i].ok());
        EXPECT_EQ(masterOutcomes[i].payload,
                  "result" + std::to_string(i));
    }
    ASSERT_EQ(workerOutcomes.size(), masterOutcomes.size());
    for (std::size_t i = 0; i < masterOutcomes.size(); ++i)
        EXPECT_EQ(workerOutcomes[i].payload,
                  masterOutcomes[i].payload);
}
