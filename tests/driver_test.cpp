/**
 * @file
 * Simulation-driver tests: end-to-end mechanics on hand-built
 * workloads — warm/cold/compressed start paths, queueing, reclaim,
 * prewarm, metric identities, determinism, and cost accounting.
 */
#include <gtest/gtest.h>

#include "experiments/driver.hpp"
#include "policy/fixed_keepalive.hpp"
#include "policy/policy.hpp"
#include "trace/generator.hpp"

using namespace codecrunch;
using namespace codecrunch::experiments;

namespace {

/** A single-function workload with explicit arrival times. */
trace::Workload
workloadWith(std::vector<Seconds> arrivals, Seconds exec = 2.0,
             Seconds cold = 3.0, MegaBytes memory = 1000,
             Seconds decompress = 1.0, MegaBytes compressedMb = 300)
{
    trace::Workload workload;
    trace::FunctionProfile f;
    f.id = 0;
    f.name = "fn-under-test";
    f.memoryMb = memory;
    f.imageMb = memory;
    f.compressedMb = compressedMb;
    f.compressRatio = memory / compressedMb;
    f.exec[0] = exec;
    f.exec[1] = exec * 1.2;
    f.coldStart[0] = cold;
    f.coldStart[1] = cold * 1.1;
    f.decompress[0] = decompress;
    f.decompress[1] = decompress * 1.1;
    f.compressTime[0] = 0.5;
    f.compressTime[1] = 0.6;
    workload.functions.push_back(f);
    Seconds last = 0.0;
    for (Seconds t : arrivals) {
        workload.invocations.push_back({0, t, 1.0});
        last = std::max(last, t);
    }
    workload.duration = last + 60.0;
    return workload;
}

cluster::ClusterConfig
oneNodeConfig()
{
    cluster::ClusterConfig config;
    config.numX86 = 1;
    config.numArm = 0;
    config.coresPerNode = 1;
    config.memoryPerNodeMb = 4096;
    return config;
}

DriverConfig
noNoise()
{
    DriverConfig config;
    config.execNoiseSigma = 0.0;
    return config;
}

} // namespace

TEST(Driver, ColdThenWarmStart)
{
    const auto workload = workloadWith({0.0, 100.0});
    policy::FixedKeepAlive policy(600.0);
    Driver driver(workload, oneNodeConfig(), policy, noNoise());
    const auto result = driver.run();
    const auto& records = result.metrics.records();
    ASSERT_EQ(records.size(), 2u);
    EXPECT_EQ(records[0].start, StartType::Cold);
    EXPECT_DOUBLE_EQ(records[0].startup, 3.0);
    EXPECT_DOUBLE_EQ(records[0].exec, 2.0);
    EXPECT_EQ(records[1].start, StartType::Warm);
    EXPECT_DOUBLE_EQ(records[1].startup, 0.0);
    EXPECT_DOUBLE_EQ(records[1].service(), 2.0);
}

TEST(Driver, ExpiredContainerGoesColdAgain)
{
    const auto workload = workloadWith({0.0, 1000.0});
    policy::FixedKeepAlive policy(600.0); // expires before t=1000
    Driver driver(workload, oneNodeConfig(), policy, noNoise());
    const auto result = driver.run();
    EXPECT_EQ(result.metrics.records()[1].start, StartType::Cold);
    EXPECT_EQ(result.metrics.coldStarts(), 2u);
}

TEST(Driver, CompressedWarmStartPaysDecompression)
{
    const auto workload = workloadWith({0.0, 100.0});
    policy::FixedKeepAlive policy(600.0, /*compressAll=*/true);
    Driver driver(workload, oneNodeConfig(), policy, noNoise());
    const auto result = driver.run();
    const auto& records = result.metrics.records();
    ASSERT_EQ(records.size(), 2u);
    EXPECT_EQ(records[1].start, StartType::WarmCompressed);
    EXPECT_DOUBLE_EQ(records[1].startup, 1.0);
    EXPECT_EQ(result.metrics.compressedStarts(), 1u);
    // Both keep-alive periods (after each execution) compress.
    EXPECT_EQ(result.metrics.compressions(), 2u);
}

TEST(Driver, ReinvocationBeforeCompressionFinishesIsPlainWarm)
{
    // Second arrival 0.1 s after the first finishes (exec 2 s): the
    // 0.5 s compression has not completed, so the start is plain warm.
    const auto workload = workloadWith({0.0, 5.2});
    policy::FixedKeepAlive policy(600.0, true);
    Driver driver(workload, oneNodeConfig(), policy, noNoise());
    const auto result = driver.run();
    EXPECT_EQ(result.metrics.records()[1].start, StartType::Warm);
}

TEST(Driver, ServiceTimeIdentity)
{
    trace::TraceConfig config;
    config.numFunctions = 50;
    config.days = 0.05;
    const auto workload = trace::TraceGenerator::generate(config);
    policy::FixedKeepAlive policy;
    Driver driver(workload, cluster::ClusterConfig{}, policy);
    const auto result = driver.run();
    ASSERT_EQ(result.metrics.records().size(),
              workload.invocations.size());
    for (const auto& r : result.metrics.records()) {
        EXPECT_NEAR(r.service(), r.wait + r.startup + r.exec, 1e-9);
        EXPECT_GE(r.wait, 0.0);
        EXPECT_GE(r.startup, 0.0);
        EXPECT_GT(r.exec, 0.0);
    }
}

TEST(Driver, QueueingWhenSaturated)
{
    // One core; two simultaneous arrivals: the second waits for the
    // full service of the first (cold 3 + exec 2).
    const auto workload = workloadWith({0.0, 0.0});
    policy::FixedKeepAlive policy(0.0); // no keep-alive
    Driver driver(workload, oneNodeConfig(), policy, noNoise());
    const auto result = driver.run();
    const auto& records = result.metrics.records();
    ASSERT_EQ(records.size(), 2u);
    EXPECT_DOUBLE_EQ(records[0].wait, 0.0);
    EXPECT_DOUBLE_EQ(records[1].wait, 5.0);
    EXPECT_EQ(result.unserved, 0u);
}

TEST(Driver, ReclaimEvictsWarmForExecution)
{
    // Node memory 4096; function A (3000 MB) warm blocks function B
    // (3000 MB) from placing — the driver must evict A's idle
    // container to run B.
    trace::Workload workload = workloadWith({0.0});
    trace::FunctionProfile b = workload.functions[0];
    b.id = 1;
    b.name = "fn-b";
    workload.functions[0].memoryMb = 3000;
    b.memoryMb = 3000;
    workload.functions.push_back(b);
    workload.invocations.push_back({1, 50.0, 1.0});
    workload.duration = 200.0;

    policy::FixedKeepAlive policy(600.0);
    Driver driver(workload, oneNodeConfig(), policy, noNoise());
    const auto result = driver.run();
    EXPECT_EQ(result.unserved, 0u);
    EXPECT_EQ(result.metrics.records().size(), 2u);
    EXPECT_EQ(result.endEvictedForExec, 1u);
}

TEST(Driver, WarmCapDropsKeepsWhenPolicyDeclines)
{
    cluster::ClusterConfig config = oneNodeConfig();
    config.keepAliveMemoryFraction = 0.1; // 409 MB: below footprint
    const auto workload = workloadWith({0.0, 100.0});
    policy::FixedKeepAlive policy(600.0);
    Driver driver(workload, config, policy, noNoise());
    const auto result = driver.run();
    // The keep never fits, so the second start is cold.
    EXPECT_EQ(result.metrics.records()[1].start, StartType::Cold);
    EXPECT_EQ(result.keepDropped, 2u);
}

TEST(Driver, PrewarmCreatesWarmContainer)
{
    /** Policy that pre-warms function 0 at the first tick. */
    class PrewarmOnce : public policy::Policy {
      public:
        std::string name() const override { return "prewarm-once"; }
        policy::KeepAliveDecision
        onFinish(const metrics::InvocationRecord&) override
        {
            return {};
        }
        void
        onTick(Seconds) override
        {
            if (!done_) {
                done_ = true;
                fired = context_->requestPrewarm(0, NodeType::X86,
                                                 600.0);
            }
        }
        bool fired = false;

      private:
        bool done_ = false;
    };

    const auto workload = workloadWith({120.0});
    PrewarmOnce policy;
    Driver driver(workload, oneNodeConfig(), policy, noNoise());
    const auto result = driver.run();
    EXPECT_TRUE(policy.fired);
    ASSERT_EQ(result.metrics.records().size(), 1u);
    // Prewarmed at t=60 (+3 s cold start): the t=120 arrival is warm.
    EXPECT_EQ(result.metrics.records()[0].start, StartType::Warm);
}

TEST(Driver, SetKeepAliveExtendsExpiry)
{
    /** Policy that keeps 60 s but extends at every tick. */
    class Extender : public policy::Policy {
      public:
        std::string name() const override { return "extender"; }
        policy::KeepAliveDecision
        onFinish(const metrics::InvocationRecord&) override
        {
            return {60.0, false, std::nullopt};
        }
        void
        onTick(Seconds) override
        {
            context_->requestSetKeepAlive(0, 120.0);
        }
    };

    // Arrival at 0, re-invocation at 300 s: 60 s keep-alive alone
    // would expire, but per-tick extension carries it through.
    const auto workload = workloadWith({0.0, 300.0});
    Extender policy;
    Driver driver(workload, oneNodeConfig(), policy, noNoise());
    const auto result = driver.run();
    EXPECT_EQ(result.metrics.records()[1].start, StartType::Warm);
}

TEST(Driver, RequestEvictRemovesContainers)
{
    class EvictAtTick : public policy::Policy {
      public:
        std::string name() const override { return "evictor"; }
        policy::KeepAliveDecision
        onFinish(const metrics::InvocationRecord&) override
        {
            return {3600.0, false, std::nullopt};
        }
        void
        onTick(Seconds) override
        {
            context_->requestEvict(0);
        }
    };

    const auto workload = workloadWith({0.0, 300.0});
    EvictAtTick policy;
    Driver driver(workload, oneNodeConfig(), policy, noNoise());
    const auto result = driver.run();
    EXPECT_EQ(result.metrics.records()[1].start, StartType::Cold);
}

TEST(Driver, CrossArchWarmupPrewarmsOtherSide)
{
    class KeepOnArm : public policy::Policy {
      public:
        std::string name() const override { return "keep-on-arm"; }
        policy::KeepAliveDecision
        onFinish(const metrics::InvocationRecord&) override
        {
            return {600.0, false, NodeType::ARM};
        }
    };

    cluster::ClusterConfig config = oneNodeConfig();
    config.numArm = 1;
    const auto workload = workloadWith({0.0, 100.0});
    KeepOnArm policy;
    Driver driver(workload, config, policy, noNoise());
    const auto result = driver.run();
    const auto& records = result.metrics.records();
    EXPECT_EQ(records[1].start, StartType::Warm);
    EXPECT_EQ(records[1].nodeType, NodeType::ARM);
}

TEST(Driver, CompressedContainerSurvivesMemorySqueeze)
{
    // Node: 2 cores, 1300 MB. Function A (1000 MB, compressed to
    // 200 MB) is kept warm compressed. Function B (1000 MB) then
    // executes. A's re-invocation arrives while B runs: expanding the
    // compressed container (200 -> 1000 MB) does not fit, and no node
    // can host a cold start either — but the idle compressed
    // container must NOT be sacrificed for a doomed reclaim. When B
    // finishes, A starts warm-compressed.
    trace::Workload workload = workloadWith({0.0, 11.0});
    trace::FunctionProfile b = workload.functions[0];
    b.id = 1;
    b.name = "fn-b";
    b.exec[0] = b.exec[1] = 5.0;
    workload.functions.push_back(b);
    workload.invocations.push_back({1, 10.0, 1.0});
    std::sort(workload.invocations.begin(),
              workload.invocations.end(),
              [](const Invocation& x, const Invocation& y) {
                  return x.arrival < y.arrival;
              });
    workload.duration = 120.0;

    cluster::ClusterConfig config;
    config.numX86 = 1;
    config.numArm = 0;
    config.coresPerNode = 2;
    config.memoryPerNodeMb = 1300;
    policy::FixedKeepAlive policy(600.0, /*compressAll=*/true);
    Driver driver(workload, config, policy, noNoise());
    const auto result = driver.run();

    // A cold at 0, B cold at 10, A warm-compressed after B finishes.
    const auto& records = result.metrics.records();
    ASSERT_EQ(records.size(), 3u);
    const auto& reinvocation = records[2];
    EXPECT_EQ(reinvocation.function, 0u);
    EXPECT_EQ(reinvocation.start, StartType::WarmCompressed);
    EXPECT_GT(reinvocation.wait, 1.0); // waited for B to finish
}

TEST(Driver, DeterministicAcrossRuns)
{
    trace::TraceConfig config;
    config.numFunctions = 60;
    config.days = 0.05;
    const auto workload = trace::TraceGenerator::generate(config);
    auto runOnce = [&] {
        policy::FixedKeepAlive policy;
        Driver driver(workload, cluster::ClusterConfig{}, policy);
        return driver.run().metrics.meanServiceTime();
    };
    EXPECT_DOUBLE_EQ(runOnce(), runOnce());
}

TEST(Driver, CostMatchesHandComputation)
{
    // One invocation, kept for exactly 600 s (expiry), 1000 MB on x86.
    const auto workload = workloadWith({0.0});
    policy::FixedKeepAlive policy(600.0);
    cluster::ClusterConfig config = oneNodeConfig();
    Driver driver(workload, config, policy, noNoise());
    const auto result = driver.run();
    const double rate =
        config.x86CostPerHour / config.memoryPerNodeMb / 3600.0;
    EXPECT_NEAR(result.keepAliveSpend, rate * 1000 * 600, 1e-9);
}

TEST(Driver, CompressedContainerCostsLess)
{
    const auto workload = workloadWith({0.0});
    auto runSpend = [&](bool compress) {
        policy::FixedKeepAlive policy(600.0, compress);
        Driver driver(workload, oneNodeConfig(), policy, noNoise());
        return driver.run().keepAliveSpend;
    };
    const double plain = runSpend(false);
    const double packed = runSpend(true);
    // 0.5 s at 1000 MB, then 599.5 s at 300 MB.
    EXPECT_LT(packed, plain * 0.45);
}

TEST(Driver, TimelineBinsSumToInvocations)
{
    trace::TraceConfig config;
    config.numFunctions = 40;
    config.days = 0.05;
    const auto workload = trace::TraceGenerator::generate(config);
    policy::FixedKeepAlive policy;
    Driver driver(workload, cluster::ClusterConfig{}, policy);
    const auto result = driver.run();
    std::size_t binned = 0;
    for (const auto& bin : result.metrics.timeline())
        binned += bin.invocations;
    EXPECT_EQ(binned, workload.invocations.size());
}

TEST(Driver, EmptyWorkloadCompletes)
{
    trace::Workload workload;
    workload.duration = 60.0;
    policy::FixedKeepAlive policy;
    Driver driver(workload, cluster::ClusterConfig{}, policy);
    const auto result = driver.run();
    EXPECT_EQ(result.metrics.invocations(), 0u);
    EXPECT_DOUBLE_EQ(result.keepAliveSpend, 0.0);
}

TEST(Driver, DecisionTimeIsMeasured)
{
    trace::TraceConfig config;
    config.numFunctions = 30;
    config.days = 0.05;
    const auto workload = trace::TraceGenerator::generate(config);
    policy::FixedKeepAlive policy;
    Driver driver(workload, cluster::ClusterConfig{}, policy);
    const auto result = driver.run();
    EXPECT_GT(result.decisionWallSeconds, 0.0);
    EXPECT_LT(result.decisionWallSeconds, 10.0);
}

TEST(Driver, MemoryNeverOvercommitted)
{
    // The Cluster panics on any overcommit, so a clean run of a
    // saturating workload is itself the invariant check.
    trace::TraceConfig config;
    config.numFunctions = 200;
    config.days = 0.1;
    config.targetMeanRatePerSecond = 5.0;
    const auto workload = trace::TraceGenerator::generate(config);
    cluster::ClusterConfig clusterConfig;
    clusterConfig.numX86 = 2;
    clusterConfig.numArm = 2;
    clusterConfig.keepAliveMemoryFraction = 0.3;
    policy::FixedKeepAlive policy;
    Driver driver(workload, clusterConfig, policy);
    const auto result = driver.run();
    EXPECT_EQ(result.metrics.invocations() + result.unserved,
              workload.invocations.size());
}

TEST(Driver, FinishedPrewarmWithoutHeadroomIsCountedDropped)
{
    /** Issues two simultaneous prewarms; only one can become warm. */
    class PrewarmTwice : public policy::Policy {
      public:
        std::string name() const override { return "prewarm-twice"; }
        policy::KeepAliveDecision
        onFinish(const metrics::InvocationRecord&) override
        {
            return {};
        }
        void
        onTick(Seconds) override
        {
            if (!done_) {
                done_ = true;
                context_->requestPrewarm(0, NodeType::X86, 600.0);
                context_->requestPrewarm(0, NodeType::X86, 600.0);
            }
        }

      private:
        bool done_ = false;
    };

    // 4096 MB node with a 30% warm cap (~1229 MB): both 1000 MB
    // prewarms run their cold starts concurrently, but only the first
    // finished container fits under the cap — the second has nowhere
    // to live and must be counted, not silently vanish.
    cluster::ClusterConfig config = oneNodeConfig();
    config.coresPerNode = 2;
    config.keepAliveMemoryFraction = 0.3;
    const auto workload = workloadWith({300.0});
    PrewarmTwice policy;
    Driver driver(workload, config, policy, noNoise());
    const auto result = driver.run();
    EXPECT_EQ(result.prewarmsDropped, 1u);
    ASSERT_EQ(result.metrics.records().size(), 1u);
    EXPECT_EQ(result.metrics.records()[0].start, StartType::Warm);
}
