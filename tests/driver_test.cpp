/**
 * @file
 * Simulation-driver tests: end-to-end mechanics on hand-built
 * workloads — warm/cold/compressed start paths, queueing, reclaim,
 * prewarm, metric identities, determinism, and cost accounting.
 */
#include <gtest/gtest.h>

#include "experiments/driver.hpp"
#include "policy/fixed_keepalive.hpp"
#include "policy/policy.hpp"
#include "trace/generator.hpp"

using namespace codecrunch;
using namespace codecrunch::experiments;

namespace {

/** A single-function workload with explicit arrival times. */
trace::Workload
workloadWith(std::vector<Seconds> arrivals, Seconds exec = 2.0,
             Seconds cold = 3.0, MegaBytes memory = 1000,
             Seconds decompress = 1.0, MegaBytes compressedMb = 300)
{
    trace::Workload workload;
    trace::FunctionProfile f;
    f.id = 0;
    f.name = "fn-under-test";
    f.memoryMb = memory;
    f.imageMb = memory;
    f.compressedMb = compressedMb;
    f.compressRatio = memory / compressedMb;
    f.exec[0] = exec;
    f.exec[1] = exec * 1.2;
    f.coldStart[0] = cold;
    f.coldStart[1] = cold * 1.1;
    f.decompress[0] = decompress;
    f.decompress[1] = decompress * 1.1;
    f.compressTime[0] = 0.5;
    f.compressTime[1] = 0.6;
    workload.functions.push_back(f);
    Seconds last = 0.0;
    for (Seconds t : arrivals) {
        workload.invocations.push_back({0, t, 1.0});
        last = std::max(last, t);
    }
    workload.duration = last + 60.0;
    return workload;
}

cluster::ClusterConfig
oneNodeConfig()
{
    cluster::ClusterConfig config;
    config.numX86 = 1;
    config.numArm = 0;
    config.coresPerNode = 1;
    config.memoryPerNodeMb = 4096;
    return config;
}

DriverConfig
noNoise()
{
    DriverConfig config;
    config.execNoiseSigma = 0.0;
    return config;
}

} // namespace

TEST(Driver, ColdThenWarmStart)
{
    const auto workload = workloadWith({0.0, 100.0});
    policy::FixedKeepAlive policy(600.0);
    Driver driver(workload, oneNodeConfig(), policy, noNoise());
    const auto result = driver.run();
    const auto& records = result.metrics.records();
    ASSERT_EQ(records.size(), 2u);
    EXPECT_EQ(records[0].start, StartType::Cold);
    EXPECT_DOUBLE_EQ(records[0].startup, 3.0);
    EXPECT_DOUBLE_EQ(records[0].exec, 2.0);
    EXPECT_EQ(records[1].start, StartType::Warm);
    EXPECT_DOUBLE_EQ(records[1].startup, 0.0);
    EXPECT_DOUBLE_EQ(records[1].service(), 2.0);
}

TEST(Driver, ExpiredContainerGoesColdAgain)
{
    const auto workload = workloadWith({0.0, 1000.0});
    policy::FixedKeepAlive policy(600.0); // expires before t=1000
    Driver driver(workload, oneNodeConfig(), policy, noNoise());
    const auto result = driver.run();
    EXPECT_EQ(result.metrics.records()[1].start, StartType::Cold);
    EXPECT_EQ(result.metrics.coldStarts(), 2u);
}

TEST(Driver, CompressedWarmStartPaysDecompression)
{
    const auto workload = workloadWith({0.0, 100.0});
    policy::FixedKeepAlive policy(600.0, /*compressAll=*/true);
    Driver driver(workload, oneNodeConfig(), policy, noNoise());
    const auto result = driver.run();
    const auto& records = result.metrics.records();
    ASSERT_EQ(records.size(), 2u);
    EXPECT_EQ(records[1].start, StartType::WarmCompressed);
    EXPECT_DOUBLE_EQ(records[1].startup, 1.0);
    EXPECT_EQ(result.metrics.compressedStarts(), 1u);
    // Both keep-alive periods (after each execution) compress.
    EXPECT_EQ(result.metrics.compressions(), 2u);
}

TEST(Driver, ReinvocationBeforeCompressionFinishesIsPlainWarm)
{
    // Second arrival 0.1 s after the first finishes (exec 2 s): the
    // 0.5 s compression has not completed, so the start is plain warm.
    const auto workload = workloadWith({0.0, 5.2});
    policy::FixedKeepAlive policy(600.0, true);
    Driver driver(workload, oneNodeConfig(), policy, noNoise());
    const auto result = driver.run();
    EXPECT_EQ(result.metrics.records()[1].start, StartType::Warm);
}

TEST(Driver, ServiceTimeIdentity)
{
    trace::TraceConfig config;
    config.numFunctions = 50;
    config.days = 0.05;
    const auto workload = trace::TraceGenerator::generate(config);
    policy::FixedKeepAlive policy;
    Driver driver(workload, cluster::ClusterConfig{}, policy);
    const auto result = driver.run();
    ASSERT_EQ(result.metrics.records().size(),
              workload.invocations.size());
    for (const auto& r : result.metrics.records()) {
        EXPECT_NEAR(r.service(), r.wait + r.startup + r.exec, 1e-9);
        EXPECT_GE(r.wait, 0.0);
        EXPECT_GE(r.startup, 0.0);
        EXPECT_GT(r.exec, 0.0);
    }
}

TEST(Driver, QueueingWhenSaturated)
{
    // One core; two simultaneous arrivals: the second waits for the
    // full service of the first (cold 3 + exec 2).
    const auto workload = workloadWith({0.0, 0.0});
    policy::FixedKeepAlive policy(0.0); // no keep-alive
    Driver driver(workload, oneNodeConfig(), policy, noNoise());
    const auto result = driver.run();
    const auto& records = result.metrics.records();
    ASSERT_EQ(records.size(), 2u);
    EXPECT_DOUBLE_EQ(records[0].wait, 0.0);
    EXPECT_DOUBLE_EQ(records[1].wait, 5.0);
    EXPECT_EQ(result.unserved, 0u);
}

TEST(Driver, ReclaimEvictsWarmForExecution)
{
    // Node memory 4096; function A (3000 MB) warm blocks function B
    // (3000 MB) from placing — the driver must evict A's idle
    // container to run B.
    trace::Workload workload = workloadWith({0.0});
    trace::FunctionProfile b = workload.functions[0];
    b.id = 1;
    b.name = "fn-b";
    workload.functions[0].memoryMb = 3000;
    b.memoryMb = 3000;
    workload.functions.push_back(b);
    workload.invocations.push_back({1, 50.0, 1.0});
    workload.duration = 200.0;

    policy::FixedKeepAlive policy(600.0);
    Driver driver(workload, oneNodeConfig(), policy, noNoise());
    const auto result = driver.run();
    EXPECT_EQ(result.unserved, 0u);
    EXPECT_EQ(result.metrics.records().size(), 2u);
    EXPECT_EQ(result.endEvictedForExec, 1u);
}

TEST(Driver, WarmCapDropsKeepsWhenPolicyDeclines)
{
    cluster::ClusterConfig config = oneNodeConfig();
    config.keepAliveMemoryFraction = 0.1; // 409 MB: below footprint
    const auto workload = workloadWith({0.0, 100.0});
    policy::FixedKeepAlive policy(600.0);
    Driver driver(workload, config, policy, noNoise());
    const auto result = driver.run();
    // The keep never fits, so the second start is cold.
    EXPECT_EQ(result.metrics.records()[1].start, StartType::Cold);
    EXPECT_EQ(result.keepDropped, 2u);
}

TEST(Driver, PrewarmCreatesWarmContainer)
{
    /** Policy that pre-warms function 0 at the first tick. */
    class PrewarmOnce : public policy::Policy {
      public:
        std::string name() const override { return "prewarm-once"; }
        policy::KeepAliveDecision
        onFinish(const metrics::InvocationRecord&) override
        {
            return {};
        }
        void
        onTick(Seconds) override
        {
            if (!done_) {
                done_ = true;
                fired = context_->requestPrewarm(0, NodeType::X86,
                                                 600.0);
            }
        }
        bool fired = false;

      private:
        bool done_ = false;
    };

    const auto workload = workloadWith({120.0});
    PrewarmOnce policy;
    Driver driver(workload, oneNodeConfig(), policy, noNoise());
    const auto result = driver.run();
    EXPECT_TRUE(policy.fired);
    ASSERT_EQ(result.metrics.records().size(), 1u);
    // Prewarmed at t=60 (+3 s cold start): the t=120 arrival is warm.
    EXPECT_EQ(result.metrics.records()[0].start, StartType::Warm);
}

TEST(Driver, SetKeepAliveExtendsExpiry)
{
    /** Policy that keeps 60 s but extends at every tick. */
    class Extender : public policy::Policy {
      public:
        std::string name() const override { return "extender"; }
        policy::KeepAliveDecision
        onFinish(const metrics::InvocationRecord&) override
        {
            return {60.0, false, std::nullopt};
        }
        void
        onTick(Seconds) override
        {
            context_->requestSetKeepAlive(0, 120.0);
        }
    };

    // Arrival at 0, re-invocation at 300 s: 60 s keep-alive alone
    // would expire, but per-tick extension carries it through.
    const auto workload = workloadWith({0.0, 300.0});
    Extender policy;
    Driver driver(workload, oneNodeConfig(), policy, noNoise());
    const auto result = driver.run();
    EXPECT_EQ(result.metrics.records()[1].start, StartType::Warm);
}

TEST(Driver, RequestEvictRemovesContainers)
{
    class EvictAtTick : public policy::Policy {
      public:
        std::string name() const override { return "evictor"; }
        policy::KeepAliveDecision
        onFinish(const metrics::InvocationRecord&) override
        {
            return {3600.0, false, std::nullopt};
        }
        void
        onTick(Seconds) override
        {
            context_->requestEvict(0);
        }
    };

    const auto workload = workloadWith({0.0, 300.0});
    EvictAtTick policy;
    Driver driver(workload, oneNodeConfig(), policy, noNoise());
    const auto result = driver.run();
    EXPECT_EQ(result.metrics.records()[1].start, StartType::Cold);
}

TEST(Driver, CrossArchWarmupPrewarmsOtherSide)
{
    class KeepOnArm : public policy::Policy {
      public:
        std::string name() const override { return "keep-on-arm"; }
        policy::KeepAliveDecision
        onFinish(const metrics::InvocationRecord&) override
        {
            return {600.0, false, NodeType::ARM};
        }
    };

    cluster::ClusterConfig config = oneNodeConfig();
    config.numArm = 1;
    const auto workload = workloadWith({0.0, 100.0});
    KeepOnArm policy;
    Driver driver(workload, config, policy, noNoise());
    const auto result = driver.run();
    const auto& records = result.metrics.records();
    EXPECT_EQ(records[1].start, StartType::Warm);
    EXPECT_EQ(records[1].nodeType, NodeType::ARM);
}

TEST(Driver, CompressedContainerSurvivesMemorySqueeze)
{
    // Node: 2 cores, 1300 MB. Function A (1000 MB, compressed to
    // 200 MB) is kept warm compressed. Function B (1000 MB) then
    // executes. A's re-invocation arrives while B runs: expanding the
    // compressed container (200 -> 1000 MB) does not fit, and no node
    // can host a cold start either — but the idle compressed
    // container must NOT be sacrificed for a doomed reclaim. When B
    // finishes, A starts warm-compressed.
    trace::Workload workload = workloadWith({0.0, 11.0});
    trace::FunctionProfile b = workload.functions[0];
    b.id = 1;
    b.name = "fn-b";
    b.exec[0] = b.exec[1] = 5.0;
    workload.functions.push_back(b);
    workload.invocations.push_back({1, 10.0, 1.0});
    std::sort(workload.invocations.begin(),
              workload.invocations.end(),
              [](const Invocation& x, const Invocation& y) {
                  return x.arrival < y.arrival;
              });
    workload.duration = 120.0;

    cluster::ClusterConfig config;
    config.numX86 = 1;
    config.numArm = 0;
    config.coresPerNode = 2;
    config.memoryPerNodeMb = 1300;
    policy::FixedKeepAlive policy(600.0, /*compressAll=*/true);
    Driver driver(workload, config, policy, noNoise());
    const auto result = driver.run();

    // A cold at 0, B cold at 10, A warm-compressed after B finishes.
    const auto& records = result.metrics.records();
    ASSERT_EQ(records.size(), 3u);
    const auto& reinvocation = records[2];
    EXPECT_EQ(reinvocation.function, 0u);
    EXPECT_EQ(reinvocation.start, StartType::WarmCompressed);
    EXPECT_GT(reinvocation.wait, 1.0); // waited for B to finish
}

TEST(Driver, DeterministicAcrossRuns)
{
    trace::TraceConfig config;
    config.numFunctions = 60;
    config.days = 0.05;
    const auto workload = trace::TraceGenerator::generate(config);
    auto runOnce = [&] {
        policy::FixedKeepAlive policy;
        Driver driver(workload, cluster::ClusterConfig{}, policy);
        return driver.run().metrics.meanServiceTime();
    };
    EXPECT_DOUBLE_EQ(runOnce(), runOnce());
}

TEST(Driver, CostMatchesHandComputation)
{
    // One invocation, kept for exactly 600 s (expiry), 1000 MB on x86.
    const auto workload = workloadWith({0.0});
    policy::FixedKeepAlive policy(600.0);
    cluster::ClusterConfig config = oneNodeConfig();
    Driver driver(workload, config, policy, noNoise());
    const auto result = driver.run();
    const double rate =
        config.x86CostPerHour / config.memoryPerNodeMb / 3600.0;
    EXPECT_NEAR(result.keepAliveSpend, rate * 1000 * 600, 1e-9);
}

TEST(Driver, CompressedContainerCostsLess)
{
    const auto workload = workloadWith({0.0});
    auto runSpend = [&](bool compress) {
        policy::FixedKeepAlive policy(600.0, compress);
        Driver driver(workload, oneNodeConfig(), policy, noNoise());
        return driver.run().keepAliveSpend;
    };
    const double plain = runSpend(false);
    const double packed = runSpend(true);
    // 0.5 s at 1000 MB, then 599.5 s at 300 MB.
    EXPECT_LT(packed, plain * 0.45);
}

TEST(Driver, TimelineBinsSumToInvocations)
{
    trace::TraceConfig config;
    config.numFunctions = 40;
    config.days = 0.05;
    const auto workload = trace::TraceGenerator::generate(config);
    policy::FixedKeepAlive policy;
    Driver driver(workload, cluster::ClusterConfig{}, policy);
    const auto result = driver.run();
    std::size_t binned = 0;
    for (const auto& bin : result.metrics.timeline())
        binned += bin.invocations;
    EXPECT_EQ(binned, workload.invocations.size());
}

TEST(Driver, EmptyWorkloadCompletes)
{
    trace::Workload workload;
    workload.duration = 60.0;
    policy::FixedKeepAlive policy;
    Driver driver(workload, cluster::ClusterConfig{}, policy);
    const auto result = driver.run();
    EXPECT_EQ(result.metrics.invocations(), 0u);
    EXPECT_DOUBLE_EQ(result.keepAliveSpend, 0.0);
}

TEST(Driver, DecisionTimeIsMeasured)
{
    trace::TraceConfig config;
    config.numFunctions = 30;
    config.days = 0.05;
    const auto workload = trace::TraceGenerator::generate(config);
    policy::FixedKeepAlive policy;
    Driver driver(workload, cluster::ClusterConfig{}, policy);
    const auto result = driver.run();
    EXPECT_GT(result.decisionWallSeconds, 0.0);
    EXPECT_LT(result.decisionWallSeconds, 10.0);
}

TEST(Driver, MemoryNeverOvercommitted)
{
    // The Cluster panics on any overcommit, so a clean run of a
    // saturating workload is itself the invariant check.
    trace::TraceConfig config;
    config.numFunctions = 200;
    config.days = 0.1;
    config.targetMeanRatePerSecond = 5.0;
    const auto workload = trace::TraceGenerator::generate(config);
    cluster::ClusterConfig clusterConfig;
    clusterConfig.numX86 = 2;
    clusterConfig.numArm = 2;
    clusterConfig.keepAliveMemoryFraction = 0.3;
    policy::FixedKeepAlive policy;
    Driver driver(workload, clusterConfig, policy);
    const auto result = driver.run();
    EXPECT_EQ(result.metrics.invocations() + result.unserved,
              workload.invocations.size());
}

TEST(Driver, WarmScanStartsSecondContainerWhenFirstIsBlocked)
{
    // Regression: the warm path used to consult only the single
    // container findWarm() returned; when that one sat on a node with
    // a busy core, the invocation went cold even though a second warm
    // container of the same function was startable elsewhere.
    //
    // Two 1-core nodes. fn0 builds warm containers on BOTH nodes
    // (arrivals 0.0 and 0.5 overlap, so the second cold start spills
    // to node 1). fn1 (long exec) then occupies node 0's core — the
    // node hosting fn0's first (residency-order) container. The fn0
    // re-invocation at t=25 must start warm on node 1.
    trace::Workload workload = workloadWith({0.0, 0.5, 25.0});
    trace::FunctionProfile hog = workload.functions[0];
    hog.id = 1;
    hog.name = "core-hog";
    hog.exec[0] = hog.exec[1] = 30.0;
    workload.functions.push_back(hog);
    workload.invocations.push_back({1, 20.0, 1.0});
    std::sort(workload.invocations.begin(),
              workload.invocations.end(),
              [](const Invocation& x, const Invocation& y) {
                  return x.arrival < y.arrival;
              });
    workload.duration = 120.0;

    cluster::ClusterConfig config = oneNodeConfig();
    config.numX86 = 2;
    policy::FixedKeepAlive policy(600.0);
    Driver driver(workload, config, policy, noNoise());
    const auto result = driver.run();

    const auto& records = result.metrics.records();
    ASSERT_EQ(records.size(), 4u);
    // Find the fn0 arrival at t=25 (record order is finish order).
    const metrics::InvocationRecord* reinvocation = nullptr;
    for (const auto& r : records)
        if (r.function == 0u && r.arrival == 25.0)
            reinvocation = &r;
    ASSERT_NE(reinvocation, nullptr);
    EXPECT_EQ(reinvocation->start, StartType::Warm);
    EXPECT_DOUBLE_EQ(reinvocation->startup, 0.0);
    EXPECT_DOUBLE_EQ(reinvocation->wait, 0.0);
    // Colds: fn0 x2 (bootstrap) + fn1. The re-invocation is not one.
    EXPECT_EQ(result.metrics.coldStarts(), 3u);
}

TEST(Driver, WarmScanPrefersUncompressedContainer)
{
    /** Compress only the container born from the first arrival. */
    class CompressFirst : public policy::Policy {
      public:
        std::string name() const override { return "compress-first"; }
        policy::KeepAliveDecision
        onFinish(const metrics::InvocationRecord& record) override
        {
            policy::KeepAliveDecision decision;
            decision.keepAliveSeconds = 600.0;
            decision.compress = record.arrival < 0.25;
            return decision;
        }
    };

    // fn0 ends up with a compressed container on node 0 (earlier in
    // residency order) and an uncompressed one on node 1. The warm
    // scan must keep looking past the startable compressed container
    // and pick the uncompressed one: zero startup, no decompression.
    trace::Workload workload = workloadWith({0.0, 0.5, 25.0});
    cluster::ClusterConfig config = oneNodeConfig();
    config.numX86 = 2;
    CompressFirst policy;
    Driver driver(workload, config, policy, noNoise());
    const auto result = driver.run();

    const auto& records = result.metrics.records();
    ASSERT_EQ(records.size(), 3u);
    EXPECT_EQ(records[2].start, StartType::Warm);
    EXPECT_DOUBLE_EQ(records[2].startup, 0.0);
    EXPECT_EQ(result.metrics.compressedStarts(), 0u);
}

TEST(Driver, ReclaimWalksCandidatesInDescendingReclaimableOrder)
{
    // Two 4-core nodes, 4096 MB each, warm cap disabled. A placement
    // dance leaves node 0 with 2 idle warm containers (+ a 100 MB
    // running exec) and node 1 with 3 idle warm containers:
    //   node 0 reclaimable = 4096 - 100 = 3996 MB
    //   node 1 reclaimable = 4096 MB
    // A 3600 MB execution fits free memory on neither node. Reclaim
    // must try node 1 FIRST (larger reclaimable): that costs 3
    // evictions (free 1096 -> 2096 -> 3096 -> 4096). Starting from
    // node 0 instead would cost 2 — so the eviction count pins the
    // iteration order.
    trace::Workload workload;
    trace::FunctionProfile base = workloadWith({0.0}).functions[0];
    auto addFn = [&](FunctionId id, MegaBytes memory, Seconds exec,
                     Seconds arrival) {
        trace::FunctionProfile f = base;
        f.id = id;
        f.memoryMb = memory;
        f.exec[0] = f.exec[1] = exec;
        workload.functions.push_back(f);
        workload.invocations.push_back({id, arrival, 1.0});
    };
    addFn(0, 100, 200.0, 0.0); // long-running hold on node 0
    for (FunctionId id = 1; id <= 5; ++id)
        addFn(id, 1000, 2.0, static_cast<Seconds>(id)); // warm pool
    addFn(6, 3600, 2.0, 50.0); // the reclaim-forcing big exec
    workload.duration = 300.0;

    cluster::ClusterConfig config = oneNodeConfig();
    config.numX86 = 2;
    config.coresPerNode = 4;
    config.keepAliveMemoryFraction = 1.0;
    policy::FixedKeepAlive policy(600.0);
    Driver driver(workload, config, policy, noNoise());
    const auto result = driver.run();

    EXPECT_EQ(result.unserved, 0u);
    EXPECT_EQ(result.endEvictedForExec, 3u);
    EXPECT_EQ(result.reclaimFailed, 0u);
}

TEST(Driver, StartupLatencyExactlyMatchesProfile)
{
    // Property: whatever path served an invocation, its recorded
    // startup must be EXACTLY the profile entry for that StartType on
    // the architecture it ran on — warm pays zero, compressed pays
    // decompress[arch], snapshot pays restore[arch], cold pays
    // coldStart[arch]. Exec noise perturbs exec only, never startup.
    for (const std::uint64_t seed : {1ull, 7ull, 42ull}) {
        trace::TraceConfig config;
        config.numFunctions = 40;
        config.days = 0.05;
        config.seed = seed;
        const auto workload = trace::TraceGenerator::generate(config);
        policy::FixedKeepAlive policy(120.0,
                                      /*compressAll=*/seed % 2 == 0);
        Driver driver(workload, cluster::ClusterConfig{}, policy);
        const auto result = driver.run();
        ASSERT_FALSE(result.metrics.records().empty());
        std::size_t byType[4] = {0, 0, 0, 0};
        for (const auto& r : result.metrics.records()) {
            const auto& p = workload.profile(r.function);
            const int arch = static_cast<int>(r.nodeType);
            double expected = 0.0;
            switch (r.start) {
            case StartType::Cold:
                expected = p.coldStart[arch];
                break;
            case StartType::Warm:
                expected = 0.0;
                break;
            case StartType::WarmCompressed:
                expected = p.decompress[arch];
                break;
            case StartType::Snapshot:
                expected = p.restore[arch];
                break;
            }
            EXPECT_DOUBLE_EQ(r.startup, expected);
            ++byType[static_cast<int>(r.start)];
        }
        // The per-StartType counters partition the served set.
        // (warmStarts counts plain + compressed warm starts.)
        EXPECT_EQ(byType[0], result.metrics.coldStarts());
        EXPECT_EQ(byType[1] + byType[2], result.metrics.warmStarts());
        EXPECT_EQ(byType[2], result.metrics.compressedStarts());
        EXPECT_EQ(byType[3], result.metrics.snapshotStarts());
        EXPECT_EQ(byType[0] + byType[1] + byType[2] + byType[3],
                  result.metrics.records().size());
        EXPECT_EQ(result.metrics.coldStarts() +
                      result.metrics.warmStarts() +
                      result.metrics.snapshotStarts(),
                  result.metrics.records().size());
    }
}

namespace {

/** Snapshot-only residency: never keep warm, always keep a snapshot. */
class SnapshotOnly : public policy::Policy {
  public:
    std::string name() const override { return "snapshot-only"; }
    policy::KeepAliveDecision
    onFinish(const metrics::InvocationRecord&) override
    {
        policy::KeepAliveDecision decision;
        decision.keepAliveSeconds = 0.0;
        decision.snapshot = true;
        return decision;
    }
};

/** workloadWith() plus a calibrated snapshot model on the function. */
trace::Workload
snapshotWorkloadWith(std::vector<Seconds> arrivals)
{
    trace::Workload workload = workloadWith(std::move(arrivals));
    trace::FunctionProfile& f = workload.functions[0];
    f.workingSetFraction = 0.3;
    f.snapshotMb = 500.0;
    f.restore[0] = 0.8;
    f.restore[1] = 0.9;
    f.snapshotCreate[0] = 2.0;
    f.snapshotCreate[1] = 2.2;
    return workload;
}

} // namespace

TEST(Driver, SnapshotRestoreServesLaterArrivals)
{
    // Cold at t=0, finish t=5; the snapshot is created in the
    // background (2 s) and the container is NOT kept warm. Both later
    // arrivals restore from the one resident snapshot: a snapshot is
    // not consumed by a start.
    const auto workload = snapshotWorkloadWith({0.0, 100.0, 200.0});
    SnapshotOnly policy;
    Driver driver(workload, oneNodeConfig(), policy, noNoise());
    const auto result = driver.run();

    const auto& records = result.metrics.records();
    ASSERT_EQ(records.size(), 3u);
    EXPECT_EQ(records[0].start, StartType::Cold);
    EXPECT_EQ(records[1].start, StartType::Snapshot);
    EXPECT_DOUBLE_EQ(records[1].startup, 0.8);
    EXPECT_EQ(records[2].start, StartType::Snapshot);
    EXPECT_EQ(result.metrics.snapshotStarts(), 2u);
    EXPECT_EQ(result.snapshotsCreated, 1u); // deduped across finishes
    EXPECT_GT(result.snapshotStorageSpend, 0.0);
    // Storage is far cheaper than the equivalent keep-alive.
    EXPECT_LT(result.snapshotStorageSpend, 1e-3);
}

TEST(Driver, UnfavorableSnapshotFallsBackToCold)
{
    // restore > coldStart: a resident snapshot exists, but restoring
    // from it would be slower than a plain cold start — the driver
    // must not use it.
    trace::Workload workload = snapshotWorkloadWith({0.0, 100.0});
    workload.functions[0].restore[0] = 5.0; // cold is 3.0
    workload.functions[0].restore[1] = 5.0;
    SnapshotOnly policy;
    Driver driver(workload, oneNodeConfig(), policy, noNoise());
    const auto result = driver.run();

    const auto& records = result.metrics.records();
    ASSERT_EQ(records.size(), 2u);
    EXPECT_EQ(records[1].start, StartType::Cold);
    EXPECT_EQ(result.metrics.snapshotStarts(), 0u);
    EXPECT_EQ(result.snapshotsCreated, 1u);
}

TEST(Driver, SnapshotAndKeepWarmPrefersWarm)
{
    /** Keep warm AND snapshot: the warm container wins when present. */
    class WarmPlusSnapshot : public policy::Policy {
      public:
        std::string name() const override { return "warm+snap"; }
        policy::KeepAliveDecision
        onFinish(const metrics::InvocationRecord&) override
        {
            policy::KeepAliveDecision decision;
            decision.keepAliveSeconds = 150.0;
            decision.snapshot = true;
            return decision;
        }
    };

    // t=100 falls inside the keep (expires at finish+150): warm
    // start. t=300 is past every keep: the snapshot carries it.
    const auto workload = snapshotWorkloadWith({0.0, 100.0, 300.0});
    WarmPlusSnapshot policy;
    Driver driver(workload, oneNodeConfig(), policy, noNoise());
    const auto result = driver.run();

    const auto& records = result.metrics.records();
    ASSERT_EQ(records.size(), 3u);
    EXPECT_EQ(records[1].start, StartType::Warm);
    EXPECT_EQ(records[2].start, StartType::Snapshot);
    EXPECT_DOUBLE_EQ(records[2].startup, 0.8);
}

TEST(Driver, RequestDropSnapshotsRemovesResidency)
{
    /** Snapshot after the first finish, drop it at a later tick. */
    class SnapshotThenDrop : public policy::Policy {
      public:
        std::string name() const override { return "snap-then-drop"; }
        policy::KeepAliveDecision
        onFinish(const metrics::InvocationRecord&) override
        {
            policy::KeepAliveDecision decision;
            decision.snapshot = true;
            return decision;
        }
        void
        onTick(Seconds now) override
        {
            if (now >= 50.0)
                context_->requestDropSnapshots(0);
        }
    };

    const auto workload = snapshotWorkloadWith({0.0, 100.0});
    SnapshotThenDrop policy;
    Driver driver(workload, oneNodeConfig(), policy, noNoise());
    const auto result = driver.run();

    const auto& records = result.metrics.records();
    ASSERT_EQ(records.size(), 2u);
    // The snapshot was dropped before t=100: the re-invocation is
    // cold, and the storage spend covers only the resident window.
    // (The cold finish requests a fresh snapshot, hence 2 creations.)
    EXPECT_EQ(records[1].start, StartType::Cold);
    EXPECT_EQ(result.snapshotsCreated, 2u);
    EXPECT_GT(result.snapshotStorageSpend, 0.0);
}

TEST(Driver, FinishedPrewarmWithoutHeadroomIsCountedDropped)
{
    /** Issues two simultaneous prewarms; only one can become warm. */
    class PrewarmTwice : public policy::Policy {
      public:
        std::string name() const override { return "prewarm-twice"; }
        policy::KeepAliveDecision
        onFinish(const metrics::InvocationRecord&) override
        {
            return {};
        }
        void
        onTick(Seconds) override
        {
            if (!done_) {
                done_ = true;
                context_->requestPrewarm(0, NodeType::X86, 600.0);
                context_->requestPrewarm(0, NodeType::X86, 600.0);
            }
        }

      private:
        bool done_ = false;
    };

    // 4096 MB node with a 30% warm cap (~1229 MB): both 1000 MB
    // prewarms run their cold starts concurrently, but only the first
    // finished container fits under the cap — the second has nowhere
    // to live and must be counted, not silently vanish.
    cluster::ClusterConfig config = oneNodeConfig();
    config.coresPerNode = 2;
    config.keepAliveMemoryFraction = 0.3;
    const auto workload = workloadWith({300.0});
    PrewarmTwice policy;
    Driver driver(workload, config, policy, noNoise());
    const auto result = driver.run();
    EXPECT_EQ(result.prewarmsDropped, 1u);
    ASSERT_EQ(result.metrics.records().size(), 1u);
    EXPECT_EQ(result.metrics.records()[0].start, StartType::Warm);
}
