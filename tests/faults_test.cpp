/**
 * @file
 * Fault-injection tests: FaultPlan schedule determinism and validation,
 * cluster node-lifecycle invariants under churn, driver retry/backoff
 * behavior, the acceptance property that an all-zero fault config is
 * bit-identical to a fault-free run, and the controller watchdog.
 */
#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "cluster/cluster.hpp"
#include "common/rng.hpp"
#include "core/codecrunch.hpp"
#include "experiments/driver.hpp"
#include "faults/fault_plan.hpp"
#include "policy/fixed_keepalive.hpp"
#include "trace/generator.hpp"

using namespace codecrunch;
using namespace codecrunch::experiments;

namespace {

faults::FaultConfig
crashyConfig(Seconds mtbf = 1800.0, Seconds mttr = 300.0)
{
    faults::FaultConfig config;
    config.nodeMtbfSeconds = mtbf;
    config.nodeMttrSeconds = mttr;
    return config;
}

/** A single-function workload with explicit arrival times. */
trace::Workload
workloadWith(std::vector<Seconds> arrivals)
{
    trace::Workload workload;
    trace::FunctionProfile f;
    f.id = 0;
    f.name = "fn-under-test";
    f.memoryMb = 1000;
    f.imageMb = 1000;
    f.compressedMb = 300;
    f.compressRatio = 1000.0 / 300.0;
    f.exec[0] = f.exec[1] = 2.0;
    f.coldStart[0] = f.coldStart[1] = 3.0;
    f.decompress[0] = f.decompress[1] = 1.0;
    f.compressTime[0] = f.compressTime[1] = 0.5;
    workload.functions.push_back(f);
    Seconds last = 0.0;
    for (Seconds t : arrivals) {
        workload.invocations.push_back({0, t, 1.0});
        last = std::max(last, t);
    }
    workload.duration = last + 60.0;
    return workload;
}

cluster::ClusterConfig
smallClusterConfig(int x86 = 2, int arm = 1)
{
    cluster::ClusterConfig config;
    config.numX86 = x86;
    config.numArm = arm;
    config.coresPerNode = 2;
    config.memoryPerNodeMb = 4096;
    return config;
}

DriverConfig
noNoise()
{
    DriverConfig config;
    config.execNoiseSigma = 0.0;
    return config;
}

} // namespace

// --- FaultPlan --------------------------------------------------------------

TEST(FaultPlan, DefaultConfigIsDisabled)
{
    const faults::FaultPlan plan(faults::FaultConfig{}, 31, 86400.0);
    EXPECT_FALSE(plan.enabled());
    EXPECT_TRUE(plan.events().empty());
    for (std::uint64_t i = 0; i < 10000; ++i)
        EXPECT_FALSE(plan.invocationFails(i));
}

TEST(FaultPlan, SameConfigYieldsIdenticalSchedule)
{
    const auto config = crashyConfig();
    const faults::FaultPlan a(config, 8, 86400.0);
    const faults::FaultPlan b(config, 8, 86400.0);
    ASSERT_FALSE(a.events().empty());
    EXPECT_EQ(a.events(), b.events());
}

TEST(FaultPlan, SeedChangesSchedule)
{
    auto config = crashyConfig();
    const faults::FaultPlan a(config, 8, 86400.0);
    config.seed ^= 1;
    const faults::FaultPlan b(config, 8, 86400.0);
    EXPECT_NE(a.events(), b.events());
}

TEST(FaultPlan, EventsSortedByTime)
{
    const faults::FaultPlan plan(crashyConfig(600.0), 8, 86400.0);
    EXPECT_TRUE(std::is_sorted(
        plan.events().begin(), plan.events().end(),
        [](const faults::FaultEvent& a, const faults::FaultEvent& b) {
            return a.time < b.time;
        }));
}

TEST(FaultPlan, CrashAndRecoveryAlternatePerNode)
{
    const faults::FaultPlan plan(crashyConfig(600.0), 8, 86400.0);
    // Replay per node: a node never crashes while down, never recovers
    // while up, and every crash is eventually paired with a recovery.
    std::map<NodeId, bool> down;
    std::map<NodeId, std::size_t> crashes, recoveries;
    for (const auto& event : plan.events()) {
        if (event.kind == faults::FaultKind::NodeCrash) {
            EXPECT_FALSE(down[event.node]);
            down[event.node] = true;
            ++crashes[event.node];
        } else if (event.kind == faults::FaultKind::NodeRecover) {
            EXPECT_TRUE(down[event.node]);
            down[event.node] = false;
            ++recoveries[event.node];
        }
    }
    ASSERT_FALSE(crashes.empty());
    for (const auto& [node, count] : crashes)
        EXPECT_EQ(count, recoveries[node]);
}

TEST(FaultPlan, MemoryShocksTargetValidNodes)
{
    faults::FaultConfig config;
    config.memoryShockMtbfSeconds = 1200.0;
    const faults::FaultPlan plan(config, 4, 86400.0);
    ASSERT_FALSE(plan.events().empty());
    for (const auto& event : plan.events()) {
        EXPECT_EQ(event.kind, faults::FaultKind::MemoryShock);
        EXPECT_LT(event.node, 4u);
        EXPECT_GE(event.time, 0.0);
    }
}

TEST(FaultPlan, InvocationFailureExtremes)
{
    auto config = crashyConfig();
    config.transientFailureProbability = 0.0;
    const faults::FaultPlan never(config, 2, 3600.0);
    config.transientFailureProbability = 1.0;
    const faults::FaultPlan always(config, 2, 3600.0);
    for (std::uint64_t i = 0; i < 1000; ++i) {
        EXPECT_FALSE(never.invocationFails(i));
        EXPECT_TRUE(always.invocationFails(i));
    }
}

TEST(FaultPlan, InvocationFailureRateMatchesProbability)
{
    faults::FaultConfig config;
    config.transientFailureProbability = 0.25;
    const faults::FaultPlan plan(config, 1, 3600.0);
    std::size_t failures = 0;
    const std::size_t trials = 100000;
    for (std::uint64_t i = 0; i < trials; ++i)
        failures += plan.invocationFails(i) ? 1 : 0;
    EXPECT_NEAR(static_cast<double>(failures) / trials, 0.25, 0.01);
}

TEST(FaultPlan, RejectsInvalidConfigs)
{
    faults::FaultConfig bad = crashyConfig();
    bad.nodeMttrSeconds = 0.0;
    EXPECT_DEATH({ faults::FaultPlan plan(bad, 2, 3600.0); },
                 "nodeMttrSeconds");

    faults::FaultConfig badShock;
    badShock.memoryShockMtbfSeconds = 60.0;
    badShock.memoryShockFraction = 1.5;
    EXPECT_DEATH({ faults::FaultPlan plan(badShock, 2, 3600.0); },
                 "memoryShockFraction");

    faults::FaultConfig badProb;
    badProb.transientFailureProbability = 2.0;
    EXPECT_DEATH({ faults::FaultPlan plan(badProb, 2, 3600.0); },
                 "transientFailureProbability");
}

// --- Cluster node lifecycle -------------------------------------------------

TEST(ClusterFaults, MarkDownHidesNodeFromPlacement)
{
    cluster::Cluster cluster(smallClusterConfig(1, 0));
    cluster.markDown(0);
    EXPECT_TRUE(cluster.node(0).down);
    EXPECT_EQ(cluster.downNodes(), 1);
    EXPECT_FALSE(
        cluster.pickNodeForExec(NodeType::X86, 100).has_value());
    EXPECT_FALSE(
        cluster.pickNodeForWarm(NodeType::X86, 100).has_value());
    EXPECT_DOUBLE_EQ(cluster.warmHeadroomMb(0), 0.0);

    cluster.recover(0);
    EXPECT_TRUE(cluster.node(0).up());
    EXPECT_EQ(cluster.downNodes(), 0);
    EXPECT_TRUE(
        cluster.pickNodeForExec(NodeType::X86, 100).has_value());
}

TEST(ClusterFaults, MarkDownPanicsWhenNotDrained)
{
    cluster::Cluster warmHolder(smallClusterConfig());
    warmHolder.addWarm(0, 1, 100, false, 0.0);
    EXPECT_DEATH(warmHolder.markDown(0), "drained|warm");

    cluster::Cluster execHolder(smallClusterConfig());
    execHolder.reserveExec(0, 100);
    EXPECT_DEATH(execHolder.markDown(0), "drained|running|exec");
}

TEST(ClusterFaults, DoubleCrashAndSpuriousRecoveryPanic)
{
    cluster::Cluster cluster(smallClusterConfig());
    EXPECT_DEATH(cluster.recover(0), "up");
    cluster.markDown(0);
    EXPECT_DEATH(cluster.markDown(0), "down");
}

TEST(ClusterFaults, ReserveOnDownNodePanics)
{
    cluster::Cluster cluster(smallClusterConfig());
    cluster.markDown(0);
    EXPECT_DEATH(cluster.reserveExec(0, 100), "down");
}

TEST(ClusterFaults, WarmOnNodeListsOnlyThatNode)
{
    cluster::Cluster cluster(smallClusterConfig());
    const auto a = cluster.addWarm(0, 1, 100, false, 0.0);
    const auto b = cluster.addWarm(0, 2, 100, false, 0.0);
    cluster.addWarm(1, 3, 100, false, 0.0);
    auto ids = cluster.warmOnNode(0);
    std::sort(ids.begin(), ids.end());
    ASSERT_EQ(ids.size(), 2u);
    EXPECT_EQ(ids[0], std::min(a, b));
    EXPECT_EQ(ids[1], std::max(a, b));
}

TEST(ClusterFaults, ChurnPreservesCapacityInvariants)
{
    // Random churn: warm adds/removals, exec reserve/release, crashes
    // (drained first, as the driver does) and recoveries. The Cluster
    // panics internally on any invariant violation; this test also
    // cross-checks the aggregate accounting after every step.
    cluster::Cluster cluster(smallClusterConfig(3, 2));
    Rng rng(42);
    std::vector<cluster::ContainerId> warm;
    std::map<NodeId, int> execs; // node -> live reservations
    Seconds now = 0.0;
    for (int step = 0; step < 2000; ++step) {
        now += 1.0;
        const NodeId node =
            static_cast<NodeId>(rng.uniformInt(0, 4));
        const int action = rng.uniformInt(0, 4);
        if (action == 0 && cluster.node(node).up() &&
            cluster.warmHeadroomMb(node) >= 200.0) {
            warm.push_back(
                cluster.addWarm(node, 1, 200, false, now));
        } else if (action == 1 && !warm.empty()) {
            const std::size_t pick = static_cast<std::size_t>(
                rng.uniformInt(0, static_cast<int>(warm.size()) - 1));
            cluster.removeWarm(warm[pick], now);
            warm.erase(warm.begin() + pick);
        } else if (action == 2 && cluster.node(node).up() &&
                   cluster.node(node).freeCores() > 0 &&
                   cluster.node(node).freeMemoryMb() >= 300.0) {
            cluster.reserveExec(node, 300);
            ++execs[node];
        } else if (action == 3 && execs[node] > 0) {
            cluster.releaseExec(node, 300);
            --execs[node];
        } else if (action == 4) {
            if (cluster.node(node).up()) {
                // Drain, then crash — the driver's sequence.
                for (auto id : cluster.warmOnNode(node)) {
                    cluster.removeWarm(id, now);
                    warm.erase(
                        std::find(warm.begin(), warm.end(), id));
                }
                while (execs[node] > 0) {
                    cluster.releaseExec(node, 300);
                    --execs[node];
                }
                cluster.markDown(node);
            } else {
                cluster.recover(node);
            }
        }

        MegaBytes totalWarm = 0.0;
        for (const auto& n : cluster.nodes()) {
            EXPECT_GE(n.freeMemoryMb(), -1e-9);
            EXPECT_GE(n.freeCores(), 0);
            EXPECT_GE(n.coresUsed, 0);
            if (n.down) {
                EXPECT_EQ(n.coresUsed, 0);
                EXPECT_DOUBLE_EQ(n.warmMemoryMb, 0.0);
                EXPECT_DOUBLE_EQ(n.execMemoryMb, 0.0);
            }
            totalWarm += n.warmMemoryMb;
        }
        EXPECT_DOUBLE_EQ(cluster.totalWarmMemoryMb(), totalWarm);
        EXPECT_EQ(cluster.warmPool().size(), warm.size());
    }
}

// --- Driver retry/backoff ---------------------------------------------------

TEST(DriverFaults, RetryBackoffIsCappedExponential)
{
    EXPECT_DOUBLE_EQ(retryBackoff(1, 0.5, 30.0), 0.5);
    EXPECT_DOUBLE_EQ(retryBackoff(2, 0.5, 30.0), 1.0);
    EXPECT_DOUBLE_EQ(retryBackoff(3, 0.5, 30.0), 2.0);
    EXPECT_DOUBLE_EQ(retryBackoff(4, 0.5, 30.0), 4.0);
    EXPECT_DOUBLE_EQ(retryBackoff(10, 0.5, 30.0), 30.0);
    EXPECT_DOUBLE_EQ(retryBackoff(100, 0.5, 30.0), 30.0);
}

TEST(DriverFaults, AllAttemptsFailingExhaustsRetries)
{
    const auto workload = workloadWith({0.0});
    policy::FixedKeepAlive policy(600.0);
    DriverConfig config = noNoise();
    config.faults.transientFailureProbability = 1.0;
    config.maxRetries = 2;
    Driver driver(workload, smallClusterConfig(), policy, config);
    const auto result = driver.run();
    // Initial attempt + 2 retries, then the invocation is dropped.
    EXPECT_EQ(result.metrics.failedAttempts(), 3u);
    EXPECT_EQ(result.metrics.retries(), 2u);
    EXPECT_EQ(result.metrics.permanentFailures(), 1u);
    EXPECT_EQ(result.metrics.records().size(), 0u);
}

TEST(DriverFaults, ZeroRetriesDropsOnFirstFailure)
{
    const auto workload = workloadWith({0.0});
    policy::FixedKeepAlive policy(600.0);
    DriverConfig config = noNoise();
    config.faults.transientFailureProbability = 1.0;
    config.maxRetries = 0;
    Driver driver(workload, smallClusterConfig(), policy, config);
    const auto result = driver.run();
    EXPECT_EQ(result.metrics.failedAttempts(), 1u);
    EXPECT_EQ(result.metrics.retries(), 0u);
    EXPECT_EQ(result.metrics.permanentFailures(), 1u);
}

TEST(DriverFaults, ZeroFaultConfigMatchesBaselineBitExactly)
{
    // The acceptance property: a Driver given an all-zero FaultConfig
    // (with any seed) behaves bit-identically to one with the default
    // config — same records, same spend, same availability.
    trace::TraceConfig traceConfig;
    traceConfig.numFunctions = 40;
    traceConfig.days = 0.05;
    const auto workload =
        trace::TraceGenerator::generate(traceConfig);
    auto runWith = [&](DriverConfig config) {
        policy::FixedKeepAlive policy;
        Driver driver(workload, cluster::ClusterConfig{}, policy,
                      config);
        return driver.run();
    };
    DriverConfig baseline;
    DriverConfig zeroFaults;
    zeroFaults.faults.seed = 0xdeadbeef; // still disabled
    const auto a = runWith(baseline);
    const auto b = runWith(zeroFaults);
    ASSERT_EQ(a.metrics.records().size(), b.metrics.records().size());
    for (std::size_t i = 0; i < a.metrics.records().size(); ++i) {
        EXPECT_EQ(a.metrics.records()[i].function,
                  b.metrics.records()[i].function);
        EXPECT_EQ(a.metrics.records()[i].arrival,
                  b.metrics.records()[i].arrival);
        EXPECT_EQ(a.metrics.records()[i].service(),
                  b.metrics.records()[i].service());
    }
    EXPECT_EQ(a.keepAliveSpend, b.keepAliveSpend);
    EXPECT_EQ(a.metrics.failedAttempts(), 0u);
    EXPECT_EQ(b.metrics.failedAttempts(), 0u);
    EXPECT_DOUBLE_EQ(a.metrics.availability(), 1.0);
    EXPECT_DOUBLE_EQ(b.metrics.availability(), 1.0);
    EXPECT_EQ(a.nodeCrashes, 0u);
}

TEST(DriverFaults, NodeChurnRunCompletesWithAccounting)
{
    trace::TraceConfig traceConfig;
    traceConfig.numFunctions = 50;
    traceConfig.days = 0.1;
    const auto workload =
        trace::TraceGenerator::generate(traceConfig);
    policy::FixedKeepAlive policy;
    DriverConfig config;
    config.faults.nodeMtbfSeconds = 1800.0;
    config.faults.nodeMttrSeconds = 300.0;
    config.faults.transientFailureProbability = 1e-3;
    Driver driver(workload, smallClusterConfig(4, 3), policy, config);
    const auto result = driver.run();
    EXPECT_GT(result.nodeCrashes, 0u);
    EXPECT_EQ(result.nodeCrashes, result.nodeRecoveries);
    EXPECT_LT(result.metrics.availability(), 1.0);
    EXPECT_GT(result.metrics.availability(), 0.5);
    EXPECT_GT(result.metrics.failedAttempts(), 0u);
    // Every invocation is served, dropped after retries, or left
    // queued at the horizon — nothing disappears.
    EXPECT_EQ(result.metrics.records().size() +
                  result.metrics.permanentFailures() + result.unserved,
              workload.invocations.size());
}

TEST(DriverFaults, FaultRunsAreDeterministic)
{
    trace::TraceConfig traceConfig;
    traceConfig.numFunctions = 30;
    traceConfig.days = 0.05;
    const auto workload =
        trace::TraceGenerator::generate(traceConfig);
    auto runOnce = [&] {
        policy::FixedKeepAlive policy;
        DriverConfig config;
        config.faults.nodeMtbfSeconds = 900.0;
        config.faults.nodeMttrSeconds = 120.0;
        config.faults.transientFailureProbability = 1e-3;
        config.faults.memoryShockMtbfSeconds = 1200.0;
        Driver driver(workload, smallClusterConfig(3, 2), policy,
                      config);
        return driver.run();
    };
    const auto a = runOnce();
    const auto b = runOnce();
    EXPECT_DOUBLE_EQ(a.metrics.meanServiceTime(),
                     b.metrics.meanServiceTime());
    EXPECT_EQ(a.nodeCrashes, b.nodeCrashes);
    EXPECT_EQ(a.metrics.failedAttempts(), b.metrics.failedAttempts());
    EXPECT_EQ(a.metrics.retries(), b.metrics.retries());
    EXPECT_DOUBLE_EQ(a.keepAliveSpend, b.keepAliveSpend);
    EXPECT_DOUBLE_EQ(a.metrics.availability(),
                     b.metrics.availability());
}

TEST(DriverFaults, MemoryShockEvictsWarmPool)
{
    // One function re-invoked every 200 s under a long keep-alive:
    // without shocks only the first start is cold; frequent
    // full-eviction shocks force re-invocations cold again.
    std::vector<Seconds> arrivals;
    for (int i = 0; i < 20; ++i)
        arrivals.push_back(i * 200.0);
    const auto workload = workloadWith(arrivals);
    auto coldStartsWith = [&](Seconds shockMtbf) {
        policy::FixedKeepAlive policy(3600.0);
        DriverConfig config = noNoise();
        config.faults.memoryShockMtbfSeconds = shockMtbf;
        config.faults.memoryShockFraction = 1.0;
        Driver driver(workload, smallClusterConfig(1, 0), policy,
                      config);
        return driver.run().metrics.coldStarts();
    };
    EXPECT_EQ(coldStartsWith(0.0), 1u);
    EXPECT_GT(coldStartsWith(60.0), 1u);
}

TEST(DriverFaults, RejectsNegativeRetryConfig)
{
    const auto workload = workloadWith({0.0});
    policy::FixedKeepAlive policy(600.0);
    DriverConfig config;
    config.maxRetries = -1;
    EXPECT_DEATH(
        {
            Driver driver(workload, smallClusterConfig(), policy,
                          config);
        },
        "maxRetries");
}

// --- Controller watchdog ----------------------------------------------------

TEST(Watchdog, EvaluationBudgetTripsAndPreservesRun)
{
    trace::TraceConfig traceConfig;
    traceConfig.numFunctions = 40;
    traceConfig.days = 0.05;
    const auto workload =
        trace::TraceGenerator::generate(traceConfig);

    core::CodeCrunchConfig strict;
    strict.watchdog.maxEvaluationsPerTick = 1; // impossible budget
    core::CodeCrunch strictPolicy(strict);
    Driver strictDriver(workload, cluster::ClusterConfig{},
                        strictPolicy, DriverConfig{});
    const auto strictResult = strictDriver.run();
    EXPECT_GT(strictPolicy.watchdogTrips(), 0u);
    EXPECT_TRUE(strictPolicy.lastTick().degraded);
    // Degraded, not dead: every invocation is still served.
    EXPECT_EQ(strictResult.metrics.records().size(),
              workload.invocations.size());

    core::CodeCrunch relaxedPolicy{core::CodeCrunchConfig{}};
    Driver relaxedDriver(workload, cluster::ClusterConfig{},
                         relaxedPolicy, DriverConfig{});
    relaxedDriver.run();
    EXPECT_EQ(relaxedPolicy.watchdogTrips(), 0u);
}

// --- failure domains --------------------------------------------------------

namespace {

faults::FaultConfig
domainOutageConfig(Seconds mtbf = 3600.0, Seconds mttr = 600.0)
{
    faults::FaultConfig config;
    config.domainMtbfSeconds = mtbf;
    config.domainMttrSeconds = mttr;
    return config;
}

} // namespace

TEST(FaultPlanDomains, SameConfigYieldsIdenticalSchedule)
{
    const auto config = domainOutageConfig();
    const faults::FaultPlan a(config, 8, 86400.0, 4);
    const faults::FaultPlan b(config, 8, 86400.0, 4);
    ASSERT_FALSE(a.events().empty());
    EXPECT_EQ(a.events(), b.events());
}

TEST(FaultPlanDomains, OutageHitsEveryMemberAtOneTimestamp)
{
    const int numDomains = 4;
    const std::size_t numNodes = 10;
    const faults::FaultPlan plan(domainOutageConfig(1800.0), numNodes,
                                 86400.0, numDomains);
    ASSERT_FALSE(plan.events().empty());
    // Group the correlated events by (time, kind): every group must
    // cover exactly the member set of its domain — a domain outage
    // takes the whole rack down (and back up) at one instant.
    std::map<std::pair<Seconds, faults::FaultKind>,
             std::pair<int, std::vector<NodeId>>>
        groups;
    for (const auto& event : plan.events()) {
        ASSERT_GE(event.domain, 0); // domain-only config
        auto& group = groups[{event.time, event.kind}];
        group.first = event.domain;
        group.second.push_back(event.node);
    }
    ASSERT_FALSE(groups.empty());
    for (auto& [key, group] : groups) {
        std::vector<NodeId> expected;
        for (NodeId n = 0; n < numNodes; ++n) {
            if (faultDomainOf(n, numDomains) == group.first)
                expected.push_back(n);
        }
        std::sort(group.second.begin(), group.second.end());
        EXPECT_EQ(group.second, expected);
    }
}

TEST(FaultPlanDomains, DomainFaultsDoNotPerturbPerNodeStreams)
{
    const auto nodeOnly = crashyConfig();
    faults::FaultConfig combined = crashyConfig();
    combined.domainMtbfSeconds = 3600.0;
    combined.domainShockMtbfSeconds = 7200.0;
    const faults::FaultPlan a(nodeOnly, 8, 86400.0, 4);
    const faults::FaultPlan b(combined, 8, 86400.0, 4);
    // The per-node schedule draws from its own streams: adding domain
    // faults must not move a single independent event.
    std::vector<faults::FaultEvent> independent;
    for (const auto& event : b.events()) {
        if (event.domain < 0)
            independent.push_back(event);
    }
    EXPECT_EQ(independent, a.events());
    EXPECT_GT(b.events().size(), a.events().size());
}

TEST(FaultPlanDomains, RejectsInvalidDomainConfigs)
{
    const auto config = domainOutageConfig();
    // Domain faults require a domain-partitioned cluster.
    EXPECT_DEATH({ faults::FaultPlan plan(config, 8, 3600.0, 0); },
                 "failure domain");
    EXPECT_DEATH({ faults::FaultPlan plan(config, 8, 3600.0, 1); },
                 "failure domain");
    faults::FaultConfig badMttr = domainOutageConfig();
    badMttr.domainMttrSeconds = 0.0;
    EXPECT_DEATH({ faults::FaultPlan plan(badMttr, 8, 3600.0, 4); },
                 "domainMttrSeconds");
}

TEST(DriverDomainFaults, CorrelatedRunsAreDeterministic)
{
    trace::TraceConfig traceConfig;
    traceConfig.numFunctions = 30;
    traceConfig.days = 0.05;
    const auto workload =
        trace::TraceGenerator::generate(traceConfig);
    auto runOnce = [&] {
        policy::FixedKeepAlive policy;
        cluster::ClusterConfig clusterConfig = smallClusterConfig(3, 2);
        clusterConfig.numFaultDomains = 2;
        clusterConfig.domainCooldownSeconds = 300.0;
        DriverConfig config;
        config.faults.domainMtbfSeconds = 1800.0;
        config.faults.domainMttrSeconds = 120.0;
        config.faults.domainShockMtbfSeconds = 2400.0;
        Driver driver(workload, clusterConfig, policy, config);
        return driver.run();
    };
    const auto a = runOnce();
    const auto b = runOnce();
    EXPECT_GT(a.nodeCrashes, 0u);
    EXPECT_DOUBLE_EQ(a.metrics.meanServiceTime(),
                     b.metrics.meanServiceTime());
    EXPECT_EQ(a.nodeCrashes, b.nodeCrashes);
    EXPECT_DOUBLE_EQ(a.keepAliveSpend, b.keepAliveSpend);
    EXPECT_DOUBLE_EQ(a.refundedDollars, b.refundedDollars);
    EXPECT_DOUBLE_EQ(a.metrics.availability(),
                     b.metrics.availability());
    // Per-domain availability is reported, bounded, and replayable.
    ASSERT_EQ(a.metrics.domainAvailability().size(), 2u);
    for (std::size_t d = 0; d < 2; ++d) {
        EXPECT_GT(a.metrics.domainAvailability()[d], 0.0);
        EXPECT_LE(a.metrics.domainAvailability()[d], 1.0);
        EXPECT_DOUBLE_EQ(a.metrics.domainAvailability()[d],
                         b.metrics.domainAvailability()[d]);
    }
}

TEST(DriverDomainFaults, OverlappingNodeAndDomainSchedulesAreSafe)
{
    // Per-node and domain outages are generated independently, so a
    // domain outage may hit an already-down node (and a recovery an
    // already-up one); the driver treats those as no-ops. Aggressive
    // rates make overlaps near-certain; completing without a Cluster
    // panic plus conservation is the check.
    trace::TraceConfig traceConfig;
    traceConfig.numFunctions = 30;
    traceConfig.days = 0.05;
    const auto workload =
        trace::TraceGenerator::generate(traceConfig);
    policy::FixedKeepAlive policy;
    cluster::ClusterConfig clusterConfig = smallClusterConfig(3, 2);
    clusterConfig.numFaultDomains = 2;
    DriverConfig config;
    config.faults.nodeMtbfSeconds = 600.0;
    config.faults.nodeMttrSeconds = 300.0;
    config.faults.domainMtbfSeconds = 900.0;
    config.faults.domainMttrSeconds = 300.0;
    Driver driver(workload, clusterConfig, policy, config);
    const auto result = driver.run();
    EXPECT_GT(result.nodeCrashes, 0u);
    EXPECT_EQ(result.nodeCrashes, result.nodeRecoveries);
    EXPECT_EQ(result.metrics.records().size() +
                  result.metrics.permanentFailures() + result.unserved,
              workload.invocations.size());
}

TEST(DriverDomainFaults, RecoveryRePrewarmRestocksWarmPool)
{
    trace::TraceConfig traceConfig;
    traceConfig.numFunctions = 40;
    traceConfig.days = 0.1;
    const auto workload =
        trace::TraceGenerator::generate(traceConfig);
    cluster::ClusterConfig clusterConfig = smallClusterConfig(4, 3);
    clusterConfig.numFaultDomains = 3;
    clusterConfig.domainCooldownSeconds = 300.0;
    DriverConfig config;
    config.faults.domainMtbfSeconds = 3600.0;
    // Short downtime: functions the optimizer keeps warm are lost in
    // the crash but mostly not re-invoked before the recovery, so the
    // debt list is non-trivial when onNodeRecover fires.
    config.faults.domainMttrSeconds = 120.0;
    auto runWith = [&](bool reactive) {
        core::CodeCrunchConfig cc;
        // A generous budget (the benches prime it from SitW's healthy
        // spend): non-zero keep-alives plus banked credit, which is
        // what finances the recovery prewarms.
        cc.budgetRatePerSecond = 5e-4;
        cc.reactiveRecovery = reactive;
        core::CodeCrunch policy(cc);
        Driver driver(workload, clusterConfig, policy, config);
        return driver.run();
    };
    const auto reactive = runWith(true);
    const auto baseline = runWith(false);
    EXPECT_GT(reactive.nodeCrashes, 0u);
    // The reactive policy re-prewarms crash-lost functions on
    // recovery; the -noReact ablation never does.
    EXPECT_GT(reactive.rePrewarmsIssued, 0u);
    EXPECT_EQ(baseline.rePrewarmsIssued, 0u);

    core::CodeCrunchConfig noReact;
    noReact.reactiveRecovery = false;
    EXPECT_NE(core::CodeCrunch(noReact).name().find("-noReact"),
              std::string::npos);
}
