/**
 * @file
 * Cross-module integration tests on the small evaluation scenario:
 * policy hierarchy relations, budget normalization, ablations, SLA
 * mode, and the harness API.
 */
#include <gtest/gtest.h>

#include "experiments/harness.hpp"
#include "runner/engine.hpp"

using namespace codecrunch;
using namespace codecrunch::experiments;

namespace {

/** Shared harness (building workloads once keeps the suite fast). */
class IntegrationTest : public ::testing::Test
{
  protected:
    static void
    SetUpTestSuite()
    {
        Scenario scenario = Scenario::evaluationDefault();
        scenario.traceConfig.numFunctions = 600;
        scenario.traceConfig.days = 0.15;
        scenario.traceConfig.targetMeanRatePerSecond = 3.0;
        harness_ = new Harness(scenario);
    }

    static void
    TearDownTestSuite()
    {
        delete harness_;
        harness_ = nullptr;
    }

    static Harness* harness_;
};

Harness* IntegrationTest::harness_ = nullptr;

} // namespace

TEST_F(IntegrationTest, AllInvocationsServed)
{
    policy::FixedKeepAlive policy;
    const auto result = harness_->run(policy);
    EXPECT_EQ(result.unserved, 0u);
    EXPECT_EQ(result.metrics.invocations(),
              harness_->workload().invocations.size());
}

TEST_F(IntegrationTest, SitwBudgetRateIsPositiveAndCached)
{
    const double rate = harness_->sitwBudgetRate();
    EXPECT_GT(rate, 0.0);
    EXPECT_DOUBLE_EQ(rate, harness_->sitwBudgetRate());
}

TEST_F(IntegrationTest, CodeCrunchBeatsFixedKeepAlive)
{
    policy::FixedKeepAlive fixed;
    const auto fixedResult = harness_->run(fixed);
    core::CodeCrunch codecrunch(harness_->codecrunchConfig());
    const auto crunchResult = harness_->run(codecrunch);
    EXPECT_LT(crunchResult.metrics.meanServiceTime(),
              fixedResult.metrics.meanServiceTime());
}

TEST_F(IntegrationTest, CodeCrunchBeatsSitwAtEqualBudget)
{
    policy::SitW sitw;
    const auto sitwResult = harness_->run(sitw);
    core::CodeCrunch codecrunch(harness_->codecrunchConfig());
    const auto crunchResult = harness_->run(codecrunch);
    EXPECT_LT(crunchResult.metrics.meanServiceTime(),
              sitwResult.metrics.meanServiceTime());
    // ... without spending substantially more than the baseline.
    EXPECT_LT(crunchResult.keepAliveSpend,
              sitwResult.keepAliveSpend * 1.35);
}

TEST_F(IntegrationTest, OracleUpperBoundsCodeCrunch)
{
    // The Oracle's future knowledge covers the original {keep warm,
    // compress, evict} space — it has no snapshot mechanism, and
    // snapshot-enabled CodeCrunch legitimately beats it. Compare
    // against the like-for-like -noSnapshot ablation.
    auto config = harness_->codecrunchConfig();
    config.useSnapshot = false;
    core::CodeCrunch codecrunch(config);
    const auto crunchResult = harness_->run(codecrunch);
    policy::Oracle oracle(harness_->oracleConfig());
    const auto oracleResult = harness_->run(oracle);
    // Oracle has future knowledge: it must not be meaningfully worse.
    EXPECT_LT(oracleResult.metrics.meanServiceTime(),
              crunchResult.metrics.meanServiceTime() * 1.05);
}

TEST_F(IntegrationTest, MoreBudgetNeverHurtsCodeCrunch)
{
    core::CodeCrunch tight(harness_->codecrunchConfig(0.25));
    const auto tightResult = harness_->run(tight);
    core::CodeCrunch loose(harness_->codecrunchConfig(2.0));
    const auto looseResult = harness_->run(loose);
    EXPECT_LE(looseResult.metrics.meanServiceTime(),
              tightResult.metrics.meanServiceTime() * 1.02);
    EXPECT_GE(looseResult.metrics.warmStartFraction(),
              tightResult.metrics.warmStartFraction() * 0.95);
}

TEST_F(IntegrationTest, CompressionAblationReducesWarmStarts)
{
    core::CodeCrunch full(harness_->codecrunchConfig());
    const auto fullResult = harness_->run(full);
    auto config = harness_->codecrunchConfig();
    config.useCompression = false;
    core::CodeCrunch noComp(config);
    const auto noCompResult = harness_->run(noComp);
    EXPECT_GT(fullResult.metrics.compressedStarts(), 0u);
    EXPECT_EQ(noCompResult.metrics.compressedStarts(), 0u);
}

TEST_F(IntegrationTest, SnapshotAblationDisablesSnapshots)
{
    // The full decision space may adopt snapshots; the -noSnapshot
    // ablation must never create or use one — it reproduces the
    // original {keep warm, compress, evict} controller.
    core::CodeCrunch full(harness_->codecrunchConfig());
    const auto fullResult = harness_->run(full);
    auto config = harness_->codecrunchConfig();
    config.useSnapshot = false;
    core::CodeCrunch noSnap(config);
    const auto noSnapResult = harness_->run(noSnap);
    EXPECT_EQ(noSnapResult.metrics.snapshotStarts(), 0u);
    EXPECT_EQ(noSnapResult.snapshotsCreated, 0u);
    EXPECT_DOUBLE_EQ(noSnapResult.snapshotStorageSpend, 0.0);
    // Snapshot storage is priced into the budget: enabling it must
    // not blow the spend ceiling relative to the ablation.
    EXPECT_GE(fullResult.metrics.invocations(),
              noSnapResult.metrics.invocations());
}

TEST_F(IntegrationTest, ArchAblationsRunAndPinArchitecture)
{
    auto x86Config = harness_->codecrunchConfig();
    x86Config.archMode = core::ArchMode::X86Only;
    core::CodeCrunch x86Only(x86Config);
    const auto x86Result = harness_->run(x86Only);
    // With x86-only placement and ample x86 capacity, ARM should see
    // almost no executions (spill-over only).
    std::size_t armRecords = 0;
    for (const auto& r : x86Result.metrics.records())
        armRecords += r.nodeType == NodeType::ARM;
    EXPECT_LT(static_cast<double>(armRecords) /
                  x86Result.metrics.records().size(),
              0.25);
}

TEST_F(IntegrationTest, SlaModeIsWellBehaved)
{
    // The SLA-constrained controller must stay close to the
    // unconstrained one on mean service while producing a sane
    // violation metric. (The violation *delta* between the two is
    // noise-level at this scale; bench/fig09_sla reports the full
    // figure at evaluation scale.)
    const double slack = 0.25;
    const auto baselines = harness_->warmBaselines();

    core::CodeCrunch plain(harness_->codecrunchConfig());
    const auto plainResult = harness_->run(plain);
    auto slaConfig = harness_->codecrunchConfig();
    slaConfig.slaSlack = slack;
    core::CodeCrunch sla(slaConfig);
    const auto slaResult = harness_->run(sla);

    const double violations =
        slaResult.metrics.slaViolationFraction(baselines, slack);
    EXPECT_GE(violations, 0.0);
    EXPECT_LE(violations, 1.0);
    EXPECT_LT(slaResult.metrics.meanServiceTime(),
              plainResult.metrics.meanServiceTime() * 1.15);
}

TEST_F(IntegrationTest, EnhancedSitwImprovesOnPlainSitw)
{
    policy::SitW plain;
    const auto plainResult = harness_->run(plain);
    policy::Enhanced enhanced(std::make_unique<policy::SitW>());
    const auto enhancedResult = harness_->run(enhanced);
    EXPECT_LT(enhancedResult.metrics.meanServiceTime(),
              plainResult.metrics.meanServiceTime());
}

TEST_F(IntegrationTest, MainComparisonRunsAllPolicies)
{
    Scenario scenario = Scenario::small();
    Harness harness(scenario);
    runner::RunEngine engine({2, nullptr});
    const auto runs = runner::runMainComparison(harness, engine);
    ASSERT_EQ(runs.size(), 5u);
    EXPECT_EQ(runs[0].name, "SitW");
    EXPECT_EQ(runs[1].name, "FaasCache");
    EXPECT_EQ(runs[2].name, "IceBreaker");
    EXPECT_EQ(runs[3].name, "CodeCrunch");
    EXPECT_EQ(runs[4].name, "Oracle");
    for (const auto& run : runs) {
        EXPECT_GT(run.result.metrics.invocations(), 0u) << run.name;
        EXPECT_EQ(run.result.unserved, 0u) << run.name;
    }
}

TEST_F(IntegrationTest, WarmBaselinesMatchProfiles)
{
    const auto baselines = harness_->warmBaselines();
    ASSERT_EQ(baselines.size(), harness_->workload().functions.size());
    for (std::size_t i = 0; i < baselines.size(); ++i) {
        EXPECT_DOUBLE_EQ(baselines[i],
                         harness_->workload().functions[i].exec[0]);
    }
}

TEST_F(IntegrationTest, DecisionOverheadOrdering)
{
    // Sec. 5 "Overhead": IceBreaker's FFT sweep costs far more
    // decision time than CodeCrunch's SRE, which costs more than the
    // trivial fixed policy.
    policy::FixedKeepAlive fixed;
    const auto fixedResult = harness_->run(fixed);
    core::CodeCrunch codecrunch(harness_->codecrunchConfig());
    const auto crunchResult = harness_->run(codecrunch);
    policy::IceBreaker icebreaker;
    const auto iceResult = harness_->run(icebreaker);
    EXPECT_GT(iceResult.decisionWallSeconds,
              crunchResult.decisionWallSeconds);
    EXPECT_GT(crunchResult.decisionWallSeconds,
              fixedResult.decisionWallSeconds);
}
