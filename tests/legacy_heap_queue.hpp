/**
 * @file
 * Test-only copy of the pre-calendar-queue binary-heap EventQueue.
 *
 * The calendar/ladder rewrite of src/sim/event_queue.hpp is proven
 * correct by running this implementation side by side with the new one
 * over a large randomized op stream (sim_core_test.cpp,
 * DifferentialQueue*) and asserting identical pop sequences. The class
 * is a rename of the old queue, kept verbatim so the oracle's
 * semantics are exactly what every golden artifact was generated
 * against. It lives under tests/ and is not linked into the simulator.
 */
#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "common/logging.hpp"
#include "common/types.hpp"

namespace codecrunch::sim::legacy {

using EventCallback = std::function<void()>;

class LegacyHeapQueue;

namespace detail {

enum class EventStatus : std::uint8_t { Pending, Fired, Cancelled };

struct EventState {
    EventStatus status = EventStatus::Pending;
    LegacyHeapQueue* queue = nullptr;
};

} // namespace detail

/** Handle for cancelling an event scheduled on a LegacyHeapQueue. */
class LegacyEventHandle
{
  public:
    LegacyEventHandle() = default;

    void cancel();

    bool valid() const { return state_ != nullptr; }

    bool
    cancelled() const
    {
        return state_ &&
               state_->status == detail::EventStatus::Cancelled;
    }

    bool
    fired() const
    {
        return state_ && state_->status == detail::EventStatus::Fired;
    }

    bool
    pending() const
    {
        return state_ && state_->status == detail::EventStatus::Pending;
    }

  private:
    friend class LegacyHeapQueue;

    explicit LegacyEventHandle(
        std::shared_ptr<detail::EventState> state)
        : state_(std::move(state))
    {
    }

    std::shared_ptr<detail::EventState> state_;
};

/**
 * The original binary-heap event queue: std::push_heap/pop_heap over
 * (when, seq) with lazy cancellation and half-dead compaction.
 */
class LegacyHeapQueue
{
  public:
    LegacyEventHandle
    schedule(Seconds when, EventCallback callback)
    {
        if (when < now_)
            panic("LegacyHeapQueue: scheduling into the past (", when,
                  " < ", now_, ")");
        auto state = std::make_shared<detail::EventState>();
        state->queue = this;
        heap_.push_back(
            Entry{when, nextSeq_++, state, std::move(callback)});
        std::push_heap(heap_.begin(), heap_.end(), Later{});
        ++live_;
        return LegacyEventHandle(std::move(state));
    }

    LegacyEventHandle
    scheduleAfter(Seconds delay, EventCallback callback)
    {
        return schedule(now_ + delay, std::move(callback));
    }

    Seconds now() const { return now_; }

    std::size_t pending() const { return live_; }

    bool empty() const { return live_ == 0; }

    std::size_t heapEntries() const { return heap_.size(); }

    bool
    step()
    {
        while (!heap_.empty()) {
            Entry entry = popTop();
            if (entry.state->status != detail::EventStatus::Pending)
                continue; // lazily discard cancelled entries
            --live_;
            now_ = entry.when;
            entry.state->status = detail::EventStatus::Fired;
            entry.callback();
            return true;
        }
        return false;
    }

    void
    run()
    {
        while (step()) {
        }
    }

    void
    runUntil(Seconds limit)
    {
        while (!heap_.empty()) {
            while (!heap_.empty() &&
                   heap_.front().state->status !=
                       detail::EventStatus::Pending) {
                popTop();
            }
            if (heap_.empty() || heap_.front().when > limit)
                break;
            step();
        }
        if (now_ < limit)
            now_ = limit;
    }

  private:
    friend class LegacyEventHandle;

    struct Entry {
        Seconds when;
        std::uint64_t seq;
        std::shared_ptr<detail::EventState> state;
        EventCallback callback;
    };

    struct Later {
        bool
        operator()(const Entry& a, const Entry& b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            return a.seq > b.seq;
        }
    };

    Entry
    popTop()
    {
        std::pop_heap(heap_.begin(), heap_.end(), Later{});
        Entry entry = std::move(heap_.back());
        heap_.pop_back();
        return entry;
    }

    void
    noteCancelled()
    {
        if (live_ == 0)
            panic("LegacyHeapQueue: cancellation underflow");
        --live_;
        maybeCompact();
    }

    void
    maybeCompact()
    {
        constexpr std::size_t kMinEntriesToCompact = 64;
        if (heap_.size() < kMinEntriesToCompact ||
            heap_.size() - live_ <= heap_.size() / 2)
            return;
        std::erase_if(heap_, [](const Entry& entry) {
            return entry.state->status !=
                   detail::EventStatus::Pending;
        });
        std::make_heap(heap_.begin(), heap_.end(), Later{});
    }

    std::vector<Entry> heap_;
    Seconds now_ = 0.0;
    std::uint64_t nextSeq_ = 0;
    std::size_t live_ = 0;
};

inline void
LegacyEventHandle::cancel()
{
    if (state_ && state_->status == detail::EventStatus::Pending) {
        state_->status = detail::EventStatus::Cancelled;
        state_->queue->noteCancelled();
    }
}

} // namespace codecrunch::sim::legacy
