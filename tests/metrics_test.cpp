/**
 * @file
 * Metrics module tests: the collector's aggregates and timelines, SLA
 * accounting, and CSV export.
 */
#include <gtest/gtest.h>

#include <cstdio>

#include "common/csv.hpp"
#include "metrics/collector.hpp"
#include "metrics/export.hpp"

using namespace codecrunch;
using namespace codecrunch::metrics;

namespace {

InvocationRecord
makeRecord(FunctionId function, Seconds arrival, Seconds wait,
           Seconds startup, Seconds exec, StartType start)
{
    InvocationRecord r;
    r.function = function;
    r.arrival = arrival;
    r.wait = wait;
    r.startup = startup;
    r.exec = exec;
    r.start = start;
    return r;
}

} // namespace

TEST(Collector, AggregatesBasics)
{
    Collector collector(300.0);
    collector.record(
        makeRecord(0, 10.0, 0.0, 2.0, 3.0, StartType::Cold));
    collector.record(
        makeRecord(0, 70.0, 1.0, 0.0, 3.0, StartType::Warm));
    collector.record(makeRecord(1, 130.0, 0.0, 0.5, 2.0,
                                StartType::WarmCompressed));

    EXPECT_EQ(collector.invocations(), 3u);
    EXPECT_NEAR(collector.meanServiceTime(),
                (5.0 + 4.0 + 2.5) / 3.0, 1e-12);
    EXPECT_NEAR(collector.meanWaitTime(), 1.0 / 3.0, 1e-12);
    EXPECT_EQ(collector.coldStarts(), 1u);
    EXPECT_EQ(collector.warmStarts(), 2u);
    EXPECT_EQ(collector.compressedStarts(), 1u);
    EXPECT_NEAR(collector.warmStartFraction(), 2.0 / 3.0, 1e-12);
}

TEST(Collector, TimelineBinsByArrivalMinute)
{
    Collector collector(300.0);
    collector.record(
        makeRecord(0, 10.0, 0.0, 0.0, 1.0, StartType::Cold));
    collector.record(
        makeRecord(0, 59.0, 0.0, 0.0, 1.0, StartType::Warm));
    collector.record(
        makeRecord(0, 60.0, 0.0, 0.0, 1.0, StartType::Warm));
    const auto& bins = collector.timeline();
    ASSERT_GE(bins.size(), 2u);
    EXPECT_EQ(bins[0].invocations, 2u);
    EXPECT_EQ(bins[0].warmStarts, 1u);
    EXPECT_EQ(bins[1].invocations, 1u);
}

TEST(Collector, MinuteBinMeanService)
{
    Collector collector(120.0);
    collector.record(
        makeRecord(0, 5.0, 0.0, 0.0, 2.0, StartType::Warm));
    collector.record(
        makeRecord(0, 6.0, 0.0, 0.0, 4.0, StartType::Warm));
    EXPECT_NEAR(collector.timeline()[0].meanService, 3.0, 1e-12);
}

TEST(Collector, SnapshotTracksSpendDeltas)
{
    Collector collector(300.0);
    collector.snapshotMinute(60.0, 100.0, 1.0);
    collector.snapshotMinute(120.0, 150.0, 2.5);
    EXPECT_NEAR(collector.timeline()[1].keepAliveSpend, 1.0, 1e-12);
    EXPECT_NEAR(collector.timeline()[2].keepAliveSpend, 1.5, 1e-12);
    EXPECT_NEAR(collector.timeline()[2].warmMemoryMb, 150.0, 1e-12);
}

TEST(Collector, ServiceQuantiles)
{
    Collector collector;
    for (int i = 1; i <= 100; ++i) {
        collector.record(makeRecord(0, i, 0.0, 0.0,
                                    static_cast<double>(i),
                                    StartType::Warm));
    }
    EXPECT_NEAR(collector.serviceQuantile(0.5), 50.5, 1.0);
    EXPECT_NEAR(collector.serviceQuantile(1.0), 100.0, 1e-9);
}

TEST(Collector, SlaViolationPerFunctionMean)
{
    Collector collector;
    // Function 0: mean service 2.0 against baseline 1.0 -> violates
    // at 50% slack. Function 1: mean 1.05 -> compliant.
    collector.record(
        makeRecord(0, 1.0, 0.0, 1.0, 1.0, StartType::Cold));
    collector.record(
        makeRecord(1, 2.0, 0.0, 0.0, 1.05, StartType::Warm));
    const std::vector<Seconds> baselines = {1.0, 1.0};
    EXPECT_NEAR(collector.slaViolationFraction(baselines, 0.5), 0.5,
                1e-12);
    EXPECT_NEAR(collector.slaViolationFraction(baselines, 0.01), 1.0,
                1e-12);
    EXPECT_NEAR(collector.slaViolationFraction(baselines, 2.0), 0.0,
                1e-12);
}

TEST(Collector, SlaIgnoresNeverInvokedFunctions)
{
    Collector collector;
    collector.record(
        makeRecord(0, 1.0, 0.0, 0.0, 1.0, StartType::Warm));
    const std::vector<Seconds> baselines = {10.0, 0.001};
    // Function 1 was never invoked: it must not count as a violation.
    EXPECT_NEAR(collector.slaViolationFraction(baselines, 0.1), 0.0,
                1e-12);
}

TEST(Collector, SlaSkipsRecordsOutsideBaselineTable)
{
    Collector collector;
    collector.record(
        makeRecord(0, 1.0, 0.0, 1.0, 3.0, StartType::Cold));
    // Records whose function id falls outside the baseline table
    // (foreign or sentinel ids) must be skipped, not written out of
    // bounds.
    collector.record(
        makeRecord(7, 2.0, 0.0, 1.0, 3.0, StartType::Cold));
    const std::vector<Seconds> baselines = {1.0};
    EXPECT_NEAR(collector.slaViolationFraction(baselines, 0.5), 1.0,
                1e-12);
    EXPECT_NEAR(collector.slaViolationFraction({}, 0.5), 0.0, 1e-12);
}

TEST(Exporter, TimelineCsvRoundTrips)
{
    Collector collector(180.0);
    collector.record(
        makeRecord(0, 10.0, 0.0, 1.0, 2.0, StartType::Cold));
    collector.record(makeRecord(0, 70.0, 0.0, 0.5, 2.0,
                                StartType::WarmCompressed));
    collector.snapshotMinute(60.0, 512.0, 0.25);

    const std::string path = "/tmp/cc_metrics_timeline.csv";
    Exporter::writeTimeline(collector, path);
    const auto rows = CsvReader::readFile(path);
    ASSERT_GE(rows.size(), 3u); // header + at least 2 minute bins
    EXPECT_EQ(rows[0][0], "minute");
    EXPECT_EQ(rows[1][1], "1"); // minute 0: one invocation
    EXPECT_EQ(rows[2][3], "1"); // minute 1: one compressed start
    std::remove(path.c_str());
}

TEST(Exporter, RecordsCsvHasOneRowPerInvocation)
{
    Collector collector;
    collector.record(
        makeRecord(3, 10.0, 0.5, 1.0, 2.0, StartType::Cold));
    const std::string path = "/tmp/cc_metrics_records.csv";
    Exporter::writeRecords(collector, path);
    const auto rows = CsvReader::readFile(path);
    ASSERT_EQ(rows.size(), 2u);
    EXPECT_EQ(rows[1][0], "3");
    EXPECT_EQ(rows[1][6], "cold");
    std::remove(path.c_str());
}

TEST(Exporter, CdfCsvIsMonotone)
{
    Collector collector;
    for (int i = 0; i < 50; ++i) {
        collector.record(makeRecord(0, i, 0.0, 0.0, i * 0.1 + 1.0,
                                    StartType::Warm));
    }
    const std::string path = "/tmp/cc_metrics_cdf.csv";
    Exporter::writeServiceCdf(collector, path, 20);
    const auto rows = CsvReader::readFile(path);
    ASSERT_EQ(rows.size(), 22u);
    double last = -1.0;
    for (std::size_t i = 1; i < rows.size(); ++i) {
        const double v = std::stod(rows[i][1]);
        EXPECT_GE(v, last);
        last = v;
    }
    std::remove(path.c_str());
}

TEST(Collector, EmptyCollectorIsSane)
{
    Collector collector;
    EXPECT_EQ(collector.invocations(), 0u);
    EXPECT_DOUBLE_EQ(collector.meanServiceTime(), 0.0);
    EXPECT_DOUBLE_EQ(collector.warmStartFraction(), 0.0);
    EXPECT_DOUBLE_EQ(collector.serviceQuantile(0.5), 0.0);
}
