/**
 * @file
 * Tests for the observability layer: trace export determinism and
 * well-formedness, stats-registry semantics (histogram buckets, merge,
 * idempotent registration), the stats block inside run reports, the
 * phase profiler's tree invariants, and leveled logging.
 */
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/logging.hpp"
#include "core/codecrunch.hpp"
#include "obs/profiler.hpp"
#include "obs/stats.hpp"
#include "obs/trace.hpp"
#include "runner/engine.hpp"
#include "runner/report.hpp"

using namespace codecrunch;
using namespace codecrunch::experiments;
using namespace codecrunch::runner;

namespace {

/** A scenario small enough for several runs per test. */
Scenario
tinyScenario()
{
    Scenario scenario = Scenario::small();
    scenario.traceConfig.numFunctions = 40;
    scenario.traceConfig.days = 0.08;
    scenario.traceConfig.targetMeanRatePerSecond = 1.0;
    return scenario;
}

std::string
slurp(const std::string& path)
{
    std::ifstream in(path);
    std::stringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

/**
 * Minimal JSON well-formedness check: brace/bracket balance with
 * string and escape awareness. Not a validator, but catches the
 * realistic writer bugs (missing comma handled by parse in CI;
 * unterminated string, unbalanced containers here).
 */
bool
jsonBalanced(const std::string& text)
{
    std::vector<char> stack;
    bool inString = false;
    bool escaped = false;
    for (const char c : text) {
        if (inString) {
            if (escaped)
                escaped = false;
            else if (c == '\\')
                escaped = true;
            else if (c == '"')
                inString = false;
            continue;
        }
        switch (c) {
          case '"': inString = true; break;
          case '{': stack.push_back('}'); break;
          case '[': stack.push_back(']'); break;
          case '}':
          case ']':
            if (stack.empty() || stack.back() != c)
                return false;
            stack.pop_back();
            break;
          default: break;
        }
    }
    return stack.empty() && !inString;
}

/**
 * Run the standard two-stage bench shape (budget run, then two
 * dependent runs) with `threads` workers, collecting traces; returns
 * the serialized trace text. `sampleEvery` > 0 installs a per-job
 * tweak setting DriverConfig::traceSampleEvery (the --trace-sample
 * path); 0 leaves the scenario default (unsampled).
 */
std::string
traceOfTwoStagePlan(std::size_t threads, const std::string& path,
                    std::uint32_t sampleEvery = 0)
{
    Harness harness(tinyScenario());
    obs::TraceCollection trace;
    RunEngine engine({threads, nullptr, &trace});

    DriverConfigTweak tweak;
    if (sampleEvery > 0)
        tweak = [sampleEvery](DriverConfig& config) {
            config.traceSampleEvery = sampleEvery;
        };

    SimPlan budgetPlan("obs/budget");
    addSimJob(
        budgetPlan, "SitW", harness,
        [] { return std::make_unique<policy::SitW>(); }, tweak);
    harness.primeBudgetRate(engine.run(budgetPlan).front());

    SimPlan plan("obs");
    const core::CodeCrunchConfig config = harness.codecrunchConfig();
    addSimJob(
        plan, "CodeCrunch", harness,
        [config] { return std::make_unique<core::CodeCrunch>(config); },
        tweak);
    addSimJob(
        plan, "FixedKeepAlive", harness,
        [] { return std::make_unique<policy::FixedKeepAlive>(); },
        tweak);
    engine.run(plan);

    trace.write(path);
    return slurp(path);
}

/**
 * Run SitW + FixedKeepAlive (no budget dependency) with interval
 * flows enabled at `interval` sim-seconds; returns the plan results.
 */
std::vector<RunResult>
intervalRuns(std::size_t threads, Seconds interval)
{
    Harness harness(tinyScenario());
    RunEngine engine({threads});
    SimPlan plan("obs/intervals");
    DriverConfigTweak tweak = [interval](DriverConfig& config) {
        config.statsIntervalSeconds = interval;
    };
    addSimJob(
        plan, "SitW", harness,
        [] { return std::make_unique<policy::SitW>(); }, tweak);
    addSimJob(
        plan, "FixedKeepAlive", harness,
        [] { return std::make_unique<policy::FixedKeepAlive>(); },
        tweak);
    return engine.run(plan);
}

/** Log sink capturing formatted lines for assertions. */
class CaptureSink final : public LogSink
{
  public:
    void
    write(LogLevel, const std::string& line) override
    {
        lines.push_back(line);
    }

    std::vector<std::string> lines;
};

/** Find a direct child phase by name; null when absent. */
const obs::Profiler::PhaseReport*
findChild(const obs::Profiler::PhaseReport& parent,
          const std::string& name)
{
    for (const auto& child : parent.children) {
        if (child.name == name)
            return &child;
    }
    return nullptr;
}

} // namespace

TEST(Trace, SerialAndThreadedExportsAreByteIdentical)
{
    const std::string dir = ::testing::TempDir() + "obs_trace_test/";
    const std::string serial =
        traceOfTwoStagePlan(1, dir + "serial.json");
    const std::string threaded =
        traceOfTwoStagePlan(4, dir + "threaded.json");
    ASSERT_FALSE(serial.empty());
    EXPECT_EQ(serial, threaded);
    std::remove((dir + "serial.json").c_str());
    std::remove((dir + "threaded.json").c_str());

    // Chrome trace_event shape: metadata, slices, and instants for
    // every run of the plan, with human-readable track names.
    EXPECT_TRUE(jsonBalanced(serial));
    EXPECT_NE(serial.find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(serial.find("\"displayTimeUnit\""), std::string::npos);
    EXPECT_NE(serial.find("\"ph\":\"M\""), std::string::npos);
    EXPECT_NE(serial.find("\"ph\":\"X\""), std::string::npos);
    EXPECT_NE(serial.find("\"ph\":\"i\""), std::string::npos);
    EXPECT_NE(serial.find("obs/budget/SitW"), std::string::npos);
    EXPECT_NE(serial.find("obs/CodeCrunch"), std::string::npos);
    EXPECT_NE(serial.find("obs/FixedKeepAlive"), std::string::npos);
    EXPECT_NE(serial.find("controller"), std::string::npos);
}

TEST(Trace, SampledExportsAreByteIdenticalAcrossThreads)
{
    const std::string dir = ::testing::TempDir() + "obs_trace_sample/";
    const std::string full =
        traceOfTwoStagePlan(1, dir + "full.json");
    const std::string serial =
        traceOfTwoStagePlan(1, dir + "serial.json", 4);
    const std::string threaded =
        traceOfTwoStagePlan(4, dir + "threaded.json", 4);
    std::remove((dir + "full.json").c_str());
    std::remove((dir + "serial.json").c_str());
    std::remove((dir + "threaded.json").c_str());

    ASSERT_FALSE(serial.empty());
    EXPECT_EQ(serial, threaded);
    EXPECT_TRUE(jsonBalanced(serial));
    // Sampling drops ~3/4 of invocation event groups, so the sampled
    // trace must be strictly smaller than the unsampled one...
    EXPECT_LT(serial.size(), full.size());
    // ...while controller-track events (tick/optimize instants) are
    // always kept regardless of sampling.
    EXPECT_NE(serial.find("controller"), std::string::npos);
    EXPECT_NE(serial.find("\"ph\":\"i\""), std::string::npos);
}

TEST(Trace, SampleOfOneMatchesUnsampled)
{
    const std::string dir = ::testing::TempDir() + "obs_trace_one/";
    const std::string unsampled =
        traceOfTwoStagePlan(1, dir + "unsampled.json");
    const std::string sampleOne =
        traceOfTwoStagePlan(1, dir + "one.json", 1);
    std::remove((dir + "unsampled.json").c_str());
    std::remove((dir + "one.json").c_str());
    ASSERT_FALSE(unsampled.empty());
    EXPECT_EQ(unsampled, sampleOne);
}

TEST(Trace, SampleKeepDecisionIsDeterministicAndNearRate)
{
    // Pure function of (seed, function, every): same inputs, same
    // answer — the property the cross-thread byte-identity rests on.
    for (std::uint64_t f = 0; f < 64; ++f)
        EXPECT_EQ(obs::traceSampleKeeps(7, f, 4),
                  obs::traceSampleKeeps(7, f, 4));

    // every <= 1 disables sampling entirely.
    for (std::uint64_t f = 0; f < 64; ++f) {
        EXPECT_TRUE(obs::traceSampleKeeps(7, f, 0));
        EXPECT_TRUE(obs::traceSampleKeeps(7, f, 1));
    }

    // The kept fraction over many functions approaches 1/N.
    const std::uint32_t every = 8;
    const std::size_t n = 100000;
    std::size_t kept = 0;
    for (std::uint64_t f = 0; f < n; ++f)
        kept += obs::traceSampleKeeps(12345, f, every);
    EXPECT_NEAR(static_cast<double>(kept) / n, 1.0 / every, 0.01);

    // Different run seeds keep different subsets (the decision is
    // seed-derived, not a fixed function-id stripe).
    std::size_t differing = 0;
    for (std::uint64_t f = 0; f < 4096; ++f)
        differing += obs::traceSampleKeeps(1, f, 4) !=
            obs::traceSampleKeeps(2, f, 4);
    EXPECT_GT(differing, 0u);
}

TEST(Intervals, SeriesIsThreadInvariantAndSumsToRunTotals)
{
    const auto serial = intervalRuns(1, 600.0);
    const auto threaded = intervalRuns(4, 600.0);
    ASSERT_EQ(serial.size(), threaded.size());

    for (std::size_t i = 0; i < serial.size(); ++i) {
        const auto& a = serial[i].intervals;
        const auto& b = threaded[i].intervals;
        ASSERT_FALSE(a.empty());
        ASSERT_EQ(a.size(), b.size());
        for (std::size_t j = 0; j < a.size(); ++j) {
            EXPECT_DOUBLE_EQ(a[j].endSeconds, b[j].endSeconds);
            EXPECT_EQ(a[j].invocations, b[j].invocations);
            EXPECT_EQ(a[j].coldStarts, b[j].coldStarts);
            EXPECT_EQ(a[j].warmStarts, b[j].warmStarts);
            EXPECT_EQ(a[j].evictions, b[j].evictions);
            EXPECT_EQ(a[j].prewarms, b[j].prewarms);
            EXPECT_EQ(a[j].failedAttempts, b[j].failedAttempts);
            EXPECT_DOUBLE_EQ(a[j].spendDelta, b[j].spendDelta);
            EXPECT_EQ(a[j].waitQueueDepth, b[j].waitQueueDepth);
        }
    }

    for (const auto& run : serial) {
        std::uint64_t inv = 0, cold = 0, warm = 0, evict = 0;
        Dollars spend = 0.0;
        Seconds last = 0.0;
        for (const auto& sample : run.intervals) {
            EXPECT_GT(sample.endSeconds, last);
            last = sample.endSeconds;
            inv += sample.invocations;
            cold += sample.coldStarts;
            warm += sample.warmStarts;
            evict += sample.evictions;
            spend += sample.spendDelta;
        }
        // Deltas telescope back to the run totals: no flow is counted
        // twice or dropped, including the final partial interval.
        EXPECT_EQ(inv, run.metrics.invocations());
        EXPECT_EQ(cold, run.metrics.coldStarts());
        EXPECT_EQ(warm, run.metrics.warmStarts());
        EXPECT_EQ(evict,
                  run.endEvictedForExec + run.endEvictedForKeep +
                      run.endEvictedByPolicy + run.endEvictedByFault);
        EXPECT_NEAR(spend, run.keepAliveSpend,
                    1e-9 * std::max(1.0, run.keepAliveSpend));
    }
}

TEST(Intervals, DisabledByDefault)
{
    const auto runs = intervalRuns(1, 0.0);
    for (const auto& run : runs)
        EXPECT_TRUE(run.intervals.empty());
}

TEST(Trace, BuffersKeepFirstTrackName)
{
    obs::TraceBuffer buffer;
    buffer.nameTrack(3, "first");
    buffer.nameTrack(3, "second");
    ASSERT_EQ(buffer.trackNames().count(3), 1u);
    EXPECT_EQ(buffer.trackNames().at(3), "first");
}

TEST(Histogram, BucketBoundariesAreUpperInclusive)
{
    obs::Histogram h({1.0, 2.0, 5.0});
    // Exactly-on-bound values land in that bucket (le semantics).
    for (const double v : {0.5, 1.0})
        h.observe(v);
    for (const double v : {1.5, 2.0})
        h.observe(v);
    h.observe(5.0);
    h.observe(100.0); // overflow
    const auto snap = h.snapshot();
    ASSERT_EQ(snap.bounds.size(), 3u);
    ASSERT_EQ(snap.counts.size(), 4u);
    EXPECT_EQ(snap.counts[0], 2u);
    EXPECT_EQ(snap.counts[1], 2u);
    EXPECT_EQ(snap.counts[2], 1u);
    EXPECT_EQ(snap.counts[3], 1u);
    EXPECT_EQ(snap.count, 6u);
    EXPECT_DOUBLE_EQ(snap.sum, 0.5 + 1.0 + 1.5 + 2.0 + 5.0 + 100.0);
}

TEST(Histogram, MergeAddsCountsAndSums)
{
    obs::Histogram a({1.0, 2.0});
    obs::Histogram b({1.0, 2.0});
    a.observe(0.5);
    a.observe(3.0);
    b.observe(1.5);
    const auto merged =
        obs::Histogram::merge(a.snapshot(), b.snapshot());
    EXPECT_EQ(merged.count, 3u);
    EXPECT_EQ(merged.counts[0], 1u);
    EXPECT_EQ(merged.counts[1], 1u);
    EXPECT_EQ(merged.counts[2], 1u);
    EXPECT_DOUBLE_EQ(merged.sum, 0.5 + 3.0 + 1.5);
}

TEST(HistogramDeathTest, MergeRejectsMismatchedBounds)
{
    obs::Histogram a({1.0, 2.0});
    obs::Histogram mismatched({1.0, 3.0});
    const auto snapA = a.snapshot();
    const auto snapB = mismatched.snapshot();
    EXPECT_DEATH(obs::Histogram::merge(snapA, snapB), "");
}

TEST(Registry, RegistrationIsIdempotentByName)
{
    auto& registry = obs::Registry::global();
    obs::Counter& first = registry.counter("test.obs.idempotent");
    obs::Counter& second = registry.counter("test.obs.idempotent");
    EXPECT_EQ(&first, &second);
    first.add(2);
    EXPECT_EQ(second.value(), 2u);

    obs::Gauge& gauge = registry.gauge("test.obs.gauge");
    gauge.observe(3.0);
    gauge.observe(1.0); // max-gauge keeps the peak
    EXPECT_EQ(gauge.value(), 3.0);
}

TEST(Registry, SnapshotFiltersByScope)
{
    auto& registry = obs::Registry::global();
    registry.counter("test.obs.sim_scope", obs::StatScope::Sim)
        .add(1);
    registry.counter("test.obs.wall_scope", obs::StatScope::Wall)
        .add(1);
    const auto sim = registry.snapshot(obs::StatScope::Sim);
    bool sawSim = false, sawWall = false;
    for (const auto& [name, value] : sim.counters) {
        sawSim = sawSim || name == "test.obs.sim_scope";
        sawWall = sawWall || name == "test.obs.wall_scope";
    }
    EXPECT_TRUE(sawSim);
    EXPECT_FALSE(sawWall);
}

TEST(Report, RunReportCarriesSimStatsBlock)
{
    Harness harness(tinyScenario());
    policy::FixedKeepAlive fixed;
    std::vector<PolicyRun> runs;
    runs.push_back(harness.runNamed(fixed));

    const std::string path =
        ::testing::TempDir() + "obs_report_test/out.json";
    ReportMeta meta;
    meta.bench = "obs_test";
    writeRunReport(path, meta, runs);
    const std::string text = slurp(path);
    std::remove(path.c_str());

    EXPECT_TRUE(jsonBalanced(text));
    EXPECT_NE(text.find("\"stats\""), std::string::npos);
    EXPECT_NE(text.find("\"counters\""), std::string::npos);
    // The Collector registered and fed the sim-scope instruments
    // during the run above.
    EXPECT_NE(text.find("\"sim.invocations\""), std::string::npos);
    EXPECT_NE(text.find("\"sim.service_seconds\""),
              std::string::npos);
    // Wall-scope instruments and histogram sums must not leak into
    // the deterministic artifact.
    EXPECT_EQ(text.find("\"wall."), std::string::npos);
    EXPECT_EQ(text.find("\"sum\""), std::string::npos);
}

TEST(Report, RunReportCarriesIntervalSeries)
{
    Scenario scenario = tinyScenario();
    scenario.driverConfig.statsIntervalSeconds = 600.0;
    Harness harness(scenario);
    policy::FixedKeepAlive fixed;
    std::vector<PolicyRun> runs;
    runs.push_back(harness.runNamed(fixed));
    ASSERT_FALSE(runs[0].result.intervals.empty());

    const std::string path =
        ::testing::TempDir() + "obs_report_intervals/out.json";
    ReportMeta meta;
    meta.bench = "obs_test";
    writeRunReport(path, meta, runs);
    const std::string text = slurp(path);
    std::remove(path.c_str());

    EXPECT_TRUE(jsonBalanced(text));
    EXPECT_NE(text.find("\"intervals\""), std::string::npos);
    EXPECT_NE(text.find("\"end_s\""), std::string::npos);
    EXPECT_NE(text.find("\"cold_starts\""), std::string::npos);
    EXPECT_NE(text.find("\"spend_usd\""), std::string::npos);
    EXPECT_NE(text.find("\"wait_queue\""), std::string::npos);
    // The series is sim-deterministic: still no wall-scope leakage.
    EXPECT_EQ(text.find("\"wall."), std::string::npos);
}

TEST(Report, FoldedReportEmitsCollapsedStacks)
{
    auto& profiler = obs::Profiler::global();
    profiler.reset();
    profiler.setEnabled(true);
    const auto spin = [] {
        volatile double x = 0.0;
        for (int i = 0; i < 200000; ++i)
            x = x + 1.0 / (1.0 + i);
    };
    {
        CC_PHASE("folded.outer");
        spin();
        {
            CC_PHASE("folded.inner");
            spin();
        }
    }
    profiler.setEnabled(false);

    const std::string path =
        ::testing::TempDir() + "obs_folded_test.folded";
    writeFoldedReport(path);
    const std::string text = slurp(path);
    std::remove(path.c_str());
    profiler.reset();

    // Every line is "stack;parts <integer-micros>" — the collapsed
    // format flamegraph.pl / inferno / speedscope consume.
    std::istringstream lines(text);
    std::string line;
    bool sawInner = false;
    while (std::getline(lines, line)) {
        ASSERT_FALSE(line.empty());
        const auto space = line.rfind(' ');
        ASSERT_NE(space, std::string::npos) << line;
        const std::string stack = line.substr(0, space);
        const std::string micros = line.substr(space + 1);
        EXPECT_FALSE(stack.empty());
        ASSERT_FALSE(micros.empty());
        EXPECT_EQ(micros.find_first_not_of("0123456789"),
                  std::string::npos)
            << line;
        EXPECT_NE(micros, "0") << "zero-self lines must be omitted";
        sawInner =
            sawInner || stack == "folded.outer;folded.inner";
    }
    EXPECT_TRUE(sawInner);
}

TEST(Profiler, NestedPhasesSatisfyChildSumInvariant)
{
    auto& profiler = obs::Profiler::global();
    profiler.reset();
    profiler.setEnabled(true);

    const auto spin = [] {
        volatile double x = 0.0;
        for (int i = 0; i < 20000; ++i)
            x = x + 1.0 / (1.0 + i);
    };
    for (int i = 0; i < 3; ++i) {
        CC_PHASE("test.outer");
        spin();
        {
            CC_PHASE("test.inner_a");
            spin();
        }
        {
            CC_PHASE("test.inner_b");
            spin();
        }
    }
    // A short-lived thread records its own tree; it must be merged
    // into the aggregate after join (the SRE optimizer relies on it).
    std::thread worker([&spin] {
        CC_PHASE("test.outer");
        spin();
        CC_PHASE("test.inner_a");
        spin();
    });
    worker.join();

    profiler.setEnabled(false);
    const auto root = profiler.report();
    const auto* outer = findChild(root, "test.outer");
    ASSERT_NE(outer, nullptr);
    EXPECT_EQ(outer->calls, 4u);
    EXPECT_GT(outer->seconds, 0.0);
    const auto* innerA = findChild(*outer, "test.inner_a");
    const auto* innerB = findChild(*outer, "test.inner_b");
    ASSERT_NE(innerA, nullptr);
    ASSERT_NE(innerB, nullptr);
    EXPECT_EQ(innerA->calls, 4u);
    EXPECT_EQ(innerB->calls, 3u);
    // Children time nests inside the parent's.
    EXPECT_LE(innerA->seconds + innerB->seconds, outer->seconds);
    profiler.reset();
}

TEST(Profiler, DisabledScopesRecordNothing)
{
    auto& profiler = obs::Profiler::global();
    profiler.reset();
    profiler.setEnabled(false);
    {
        CC_PHASE("test.disabled");
    }
    const auto root = profiler.report();
    EXPECT_EQ(findChild(root, "test.disabled"), nullptr);
}

TEST(Logging, LevelFiltersAndLinesCarryTags)
{
    CaptureSink capture;
    LogSink* previous = setLogSink(&capture);
    const LogLevel previousLevel = logLevel();
    setLogLevel(LogLevel::Warn);

    logInfo("driver", "dropped message");
    logWarn("driver", "kept message ", 42);
    logError("", "untagged error");

    setLogLevel(previousLevel);
    setLogSink(previous);

    ASSERT_EQ(capture.lines.size(), 2u);
    EXPECT_EQ(capture.lines[0].rfind("[warn][driver][t", 0), 0u);
    EXPECT_NE(capture.lines[0].find("kept message 42"),
              std::string::npos);
    EXPECT_EQ(capture.lines[1].rfind("[error][t", 0), 0u);
}

TEST(Logging, ParseLevelRoundTrips)
{
    EXPECT_EQ(parseLogLevel("debug"), LogLevel::Debug);
    EXPECT_EQ(parseLogLevel("off"), LogLevel::Off);
    EXPECT_FALSE(parseLogLevel("verbose").has_value());
}
