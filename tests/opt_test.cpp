/**
 * @file
 * Optimization substrate tests: FFT correctness, the choice grid, and
 * the optimizer family (correctness on small exactly-solvable problems,
 * feasibility, and relative quality — the Fig. 3 property that SRE and
 * the Lagrangian oracle beat naive methods on large instances).
 */
#include <gtest/gtest.h>

#include <cmath>

#include "common/parallel.hpp"
#include "opt/fft.hpp"
#include "opt/optimizers.hpp"
#include "runner/thread_pool.hpp"

using namespace codecrunch;
using namespace codecrunch::opt;

// --- FFT ----------------------------------------------------------------

TEST(Fft, ImpulseHasFlatSpectrum)
{
    std::vector<Complex> data(8, Complex(0, 0));
    data[0] = Complex(1, 0);
    Fft::forward(data);
    for (const auto& bin : data)
        EXPECT_NEAR(std::abs(bin), 1.0, 1e-12);
}

TEST(Fft, DcSeriesConcentratesInBinZero)
{
    std::vector<Complex> data(16, Complex(1, 0));
    Fft::forward(data);
    EXPECT_NEAR(std::abs(data[0]), 16.0, 1e-12);
    for (std::size_t i = 1; i < data.size(); ++i)
        EXPECT_NEAR(std::abs(data[i]), 0.0, 1e-9);
}

TEST(Fft, SineConcentratesInItsBin)
{
    const std::size_t n = 64;
    std::vector<double> series(n);
    for (std::size_t i = 0; i < n; ++i)
        series[i] = std::sin(2.0 * M_PI * 4.0 * i / n);
    const auto spectrum = Fft::forwardReal(series);
    const auto bins = Fft::dominantBins(spectrum, 1);
    ASSERT_EQ(bins.size(), 1u);
    EXPECT_EQ(bins[0], 4u);
}

TEST(Fft, ForwardInverseRoundTrip)
{
    Rng rng(5);
    std::vector<Complex> data(32);
    for (auto& x : data)
        x = Complex(rng.uniform(-1, 1), rng.uniform(-1, 1));
    const auto original = data;
    Fft::forward(data);
    Fft::inverse(data);
    for (std::size_t i = 0; i < data.size(); ++i) {
        EXPECT_NEAR(data[i].real(), original[i].real(), 1e-9);
        EXPECT_NEAR(data[i].imag(), original[i].imag(), 1e-9);
    }
}

TEST(Fft, ParsevalHolds)
{
    Rng rng(6);
    std::vector<Complex> data(64);
    double timeEnergy = 0.0;
    for (auto& x : data) {
        x = Complex(rng.uniform(-1, 1), 0.0);
        timeEnergy += std::norm(x);
    }
    Fft::forward(data);
    double freqEnergy = 0.0;
    for (const auto& x : data)
        freqEnergy += std::norm(x);
    EXPECT_NEAR(freqEnergy, timeEnergy * 64.0, 1e-6);
}

TEST(Fft, ForwardRealZeroPads)
{
    std::vector<double> series(10, 1.0);
    const auto spectrum = Fft::forwardReal(series);
    EXPECT_EQ(spectrum.size(), 16u);
}

TEST(Fft, NextPow2)
{
    EXPECT_EQ(Fft::nextPow2(0), 1u);
    EXPECT_EQ(Fft::nextPow2(1), 1u);
    EXPECT_EQ(Fft::nextPow2(2), 2u);
    EXPECT_EQ(Fft::nextPow2(3), 4u);
    EXPECT_EQ(Fft::nextPow2(1025), 2048u);
}

TEST(Fft, NonPow2Panics)
{
    std::vector<Complex> data(12, Complex(0, 0));
    EXPECT_DEATH(Fft::forward(data), "power of two");
}

// --- choice grid -----------------------------------------------------------

TEST(ChoiceGrid, LevelsCoverPlatformRange)
{
    const auto& levels = keepAliveLevels();
    EXPECT_DOUBLE_EQ(levels.front(), 0.0);
    EXPECT_DOUBLE_EQ(levels.back(), 3600.0);
    EXPECT_TRUE(std::is_sorted(levels.begin(), levels.end()));
    EXPECT_EQ(choicesPerFunction(), 2 * 2 * 2 * levels.size());
}

// --- a synthetic separable objective ------------------------------------------

namespace {

/**
 * Synthetic interval-like objective: each function has a best
 * keep-alive level, a preferred architecture, and a compression bonus;
 * cost grows with the keep-alive level.
 */
class SyntheticObjective : public SeparableObjective
{
  public:
    SyntheticObjective(std::size_t n, double budget,
                       std::uint64_t seed = 1)
        : budget_(budget)
    {
        Rng rng(seed);
        for (std::size_t i = 0; i < n; ++i) {
            Spec spec;
            spec.bestLevel = static_cast<int>(
                rng.next() % keepAliveLevels().size());
            spec.arm = rng.bernoulli(0.4);
            spec.compressGood = rng.bernoulli(0.4);
            spec.memory = rng.uniform(100.0, 2000.0);
            spec.coldPenalty = rng.uniform(1.0, 10.0);
            specs_.push_back(spec);
        }
    }

    std::size_t size() const override { return specs_.size(); }
    double budget() const override { return budget_; }

    std::pair<double, double>
    term(std::size_t i, const Choice& c) const override
    {
        const Spec& spec = specs_[i];
        double service = 1.0;
        service += 0.2 * std::abs(c.keepAliveLevel - spec.bestLevel) *
                   spec.coldPenalty / 10.0;
        const bool wantArm = spec.arm;
        if ((c.arch == NodeType::ARM) != wantArm)
            service += 0.5;
        if (c.compress != spec.compressGood)
            service += 0.3;
        const double cost = keepAliveLevels()[static_cast<std::size_t>(
                                c.keepAliveLevel)] *
                            spec.memory * 1e-7;
        return {service, cost};
    }

  private:
    struct Spec {
        int bestLevel = 0;
        bool arm = false;
        bool compressGood = false;
        double memory = 100;
        double coldPenalty = 1;
    };

    std::vector<Spec> specs_;
    double budget_;
};

double
scoreOf(const SeparableObjective& objective, const Assignment& a)
{
    return objective.score(a);
}

} // namespace

TEST(SeparableObjective, EvaluateIsMeanOfTerms)
{
    SyntheticObjective objective(4, 100.0);
    Assignment a(4, Choice{});
    double total = 0.0;
    for (std::size_t i = 0; i < 4; ++i)
        total += objective.term(i, a[i]).first;
    EXPECT_NEAR(objective.evaluate(a), total / 4.0, 1e-12);
}

TEST(Optimizers, BruteForceFindsExactOptimumUnconstrained)
{
    SyntheticObjective objective(3, 1e9);
    Rng rng(1);
    BruteForce brute;
    const auto exact =
        brute.optimize(objective, Assignment(3, Choice{}), rng);
    // Coordinate descent must match on this separable unconstrained
    // problem (each coordinate is independent).
    CoordinateDescent descent;
    const auto cd =
        descent.optimize(objective, Assignment(3, Choice{}), rng);
    EXPECT_NEAR(cd.score, exact.score, 1e-9);
}

TEST(Optimizers, BruteForceRespectsBudget)
{
    SyntheticObjective objective(3, 0.05);
    Rng rng(1);
    BruteForce brute;
    const auto result =
        brute.optimize(objective, Assignment(3, Choice{}), rng);
    EXPECT_LE(objective.cost(result.assignment),
              objective.budget() + 1e-9);
}

TEST(Optimizers, BruteForcePanicsOnLargeProblems)
{
    SyntheticObjective objective(10, 1.0);
    Rng rng(1);
    BruteForce brute;
    EXPECT_DEATH(
        brute.optimize(objective, Assignment(10, Choice{}), rng),
        "exceeds");
}

TEST(Optimizers, LagrangianMatchesBruteForceOnSmallProblems)
{
    for (std::uint64_t seed : {1, 2, 3, 4, 5}) {
        SyntheticObjective objective(3, 0.2, seed);
        Rng rng(seed);
        BruteForce brute;
        LagrangianOracle oracle;
        const Assignment start(3, Choice{});
        const auto exact = brute.optimize(objective, start, rng);
        const auto dual = oracle.optimize(objective, start, rng);
        // Duality gap: the Lagrangian solution is feasible and within
        // a small factor of the exact optimum.
        EXPECT_LE(objective.cost(dual.assignment),
                  objective.budget() + 1e-9);
        EXPECT_LE(dual.score, exact.score * 1.15 + 1e-9);
    }
}

TEST(Optimizers, DescentNeverWorsensTheStart)
{
    SyntheticObjective objective(20, 0.5);
    Rng rng(3);
    const Assignment start = randomAssignment(20, rng);
    CoordinateDescent descent;
    const auto result = descent.optimize(objective, start, rng);
    EXPECT_LE(result.score, scoreOf(objective, start) + 1e-9);
}

TEST(Optimizers, SreNeverWorsensTheStart)
{
    SyntheticObjective objective(60, 0.5);
    Rng rng(4);
    const Assignment start = randomAssignment(60, rng);
    SreOptimizer sre;
    const auto result = sre.optimize(objective, start, rng);
    EXPECT_LE(result.score, scoreOf(objective, start) + 1e-9);
}

TEST(Optimizers, SreBeatsRandomSearchPerEvaluation)
{
    SyntheticObjective objective(80, 0.4, 7);
    Rng rngA(5), rngB(5);
    SreOptimizer sre;
    const Assignment start(80, Choice{});
    const auto sreResult = sre.optimize(objective, start, rngA);
    RandomSearch random(40); // similar evaluation budget
    const auto randomResult = random.optimize(objective, start, rngB);
    EXPECT_LT(sreResult.score, randomResult.score);
}

TEST(Optimizers, SreCountsIncreaseFairly)
{
    SyntheticObjective objective(40, 1e9);
    Rng rng(6);
    SreOptimizer::Config config;
    config.coveragePerRound = 0.5;
    config.rounds = 4;
    SreOptimizer sre(config);
    std::vector<std::uint32_t> counts(40, 0);
    sre.optimizeWithCounts(objective, Assignment(40, Choice{}), rng,
                           counts);
    std::uint32_t total = 0;
    for (auto c : counts)
        total += c;
    EXPECT_GT(total, 0u);
    // Previously optimized functions are deprioritized: seed half the
    // counts high and verify the unseeded half gets picked more.
    std::vector<std::uint32_t> biased(40, 0);
    for (std::size_t i = 0; i < 20; ++i)
        biased[i] = 1000;
    Rng rng2(6);
    sre.optimizeWithCounts(objective, Assignment(40, Choice{}), rng2,
                           biased);
    std::uint32_t pickedHigh = 0, pickedLow = 0;
    for (std::size_t i = 0; i < 20; ++i)
        pickedHigh += biased[i] - 1000;
    for (std::size_t i = 20; i < 40; ++i)
        pickedLow += biased[i];
    EXPECT_GT(pickedLow, pickedHigh);
}

TEST(Optimizers, NewtonImprovesFromRandomStart)
{
    SyntheticObjective objective(30, 1e9, 8);
    Rng rng(8);
    const Assignment start = randomAssignment(30, rng);
    NewtonLike newton;
    const auto result = newton.optimize(objective, start, rng);
    EXPECT_LE(result.score, scoreOf(objective, start) + 1e-9);
}

TEST(Optimizers, AnnealingImprovesFromRandomStart)
{
    SyntheticObjective objective(30, 1e9, 14);
    Rng rng(14);
    const Assignment start = randomAssignment(30, rng);
    SimulatedAnnealing annealing;
    const auto result = annealing.optimize(objective, start, rng);
    EXPECT_LE(result.score, scoreOf(objective, start) + 1e-9);
}

TEST(Optimizers, AnnealingHandlesEmptyProblem)
{
    SyntheticObjective objective(0, 1.0);
    Rng rng(1);
    SimulatedAnnealing annealing;
    const auto result = annealing.optimize(objective, Assignment{}, rng);
    EXPECT_TRUE(result.assignment.empty());
}

TEST(Optimizers, GeneticImprovesFromRandomStart)
{
    SyntheticObjective objective(30, 1e9, 9);
    Rng rng(9);
    const Assignment start = randomAssignment(30, rng);
    Genetic genetic(16, 15);
    const auto result = genetic.optimize(objective, start, rng);
    EXPECT_LE(result.score, scoreOf(objective, start) + 1e-9);
}

TEST(Optimizers, Fig3OrderingOnLargeConstrainedProblem)
{
    // The paper's Fig. 3(b): on the large discrete constrained space,
    // the oracle beats descent/Newton/genetic; SRE closes most of the
    // gap at a fraction of the evaluations.
    SyntheticObjective objective(150, 0.6, 10);
    const Assignment start(150, Choice{});

    Rng rng(10);
    LagrangianOracle oracle;
    const auto best = oracle.optimize(objective, start, rng);

    NewtonLike newton;
    const auto newtonResult = newton.optimize(objective, start, rng);
    Genetic genetic(20, 25);
    const auto geneticResult = genetic.optimize(objective, start, rng);
    SreOptimizer sre;
    const auto sreResult = sre.optimize(objective, start, rng);

    EXPECT_LE(best.score, newtonResult.score + 1e-9);
    EXPECT_LE(best.score, geneticResult.score + 1e-9);
    EXPECT_LE(best.score, sreResult.score + 1e-9);
    EXPECT_LT(sreResult.score, geneticResult.score);
}

TEST(Optimizers, ParallelSreMatchesSequentialSnapshotMerge)
{
    // Sub-problems are disjoint and work against a frozen snapshot,
    // so the threaded execution must be bit-identical to sequential.
    SyntheticObjective objective(90, 0.5, 11);
    const Assignment start(90, Choice{});
    SreOptimizer::Config parallelConfig;
    parallelConfig.parallel = true;
    SreOptimizer::Config serialConfig = parallelConfig;
    serialConfig.parallel = false;
    Rng rngA(3), rngB(3);
    const auto parallelResult =
        SreOptimizer(parallelConfig).optimize(objective, start, rngA);
    const auto serialResult =
        SreOptimizer(serialConfig).optimize(objective, start, rngB);
    EXPECT_DOUBLE_EQ(parallelResult.score, serialResult.score);
    ASSERT_EQ(parallelResult.assignment.size(),
              serialResult.assignment.size());
    for (std::size_t i = 0; i < parallelResult.assignment.size(); ++i)
        EXPECT_TRUE(parallelResult.assignment[i] ==
                    serialResult.assignment[i]);
}

TEST(Optimizers, ParallelSreImprovesScore)
{
    SyntheticObjective objective(120, 0.5, 12);
    Rng rng(12);
    const Assignment start = randomAssignment(120, rng);
    SreOptimizer sre; // parallel by default
    const auto result = sre.optimize(objective, start, rng);
    EXPECT_LT(result.score, objective.score(start));
}

TEST(Optimizers, EmptyProblemIsHandled)
{
    SyntheticObjective objective(0, 1.0);
    Rng rng(1);
    SreOptimizer sre;
    const auto result =
        sre.optimize(objective, Assignment{}, rng);
    EXPECT_TRUE(result.assignment.empty());
    CoordinateDescent descent;
    const auto cd = descent.optimize(objective, Assignment{}, rng);
    EXPECT_TRUE(cd.assignment.empty());
}

TEST(Optimizers, RandomAssignmentIsInGrid)
{
    Rng rng(2);
    const auto assignment = randomAssignment(100, rng);
    for (const auto& choice : assignment) {
        EXPECT_GE(choice.keepAliveLevel, 0);
        EXPECT_LT(static_cast<std::size_t>(choice.keepAliveLevel),
                  keepAliveLevels().size());
    }
}

TEST(Optimizers, SreOnSharedRunnerPoolMatchesSequential)
{
    // When an executor is installed (as runner pool workers do), SRE
    // fans its sub-problems out on that shared pool instead of
    // spawning private threads; results must stay bit-identical.
    SyntheticObjective objective(90, 0.5, 11);
    const Assignment start(90, Choice{});
    SreOptimizer::Config config;
    config.parallel = true;
    SreOptimizer::Config serialConfig = config;
    serialConfig.parallel = false;
    Rng rngA(3), rngB(3);
    runner::ThreadPool pool(3);
    OptimizerResult pooled;
    {
        ScopedParallelExecutor guard(&pool);
        pooled =
            SreOptimizer(config).optimize(objective, start, rngA);
    }
    const auto serialResult =
        SreOptimizer(serialConfig).optimize(objective, start, rngB);
    EXPECT_DOUBLE_EQ(pooled.score, serialResult.score);
    ASSERT_EQ(pooled.assignment.size(),
              serialResult.assignment.size());
    for (std::size_t i = 0; i < pooled.assignment.size(); ++i)
        EXPECT_TRUE(pooled.assignment[i] ==
                    serialResult.assignment[i]);
}
