/**
 * @file
 * Policy unit tests with a mock context: FunctionHistory statistics,
 * SitW's histogram logic, FaasCache's greedy-dual eviction, IceBreaker's
 * spectral prediction, the Oracle's future knowledge, and the Enhanced
 * wrapper's compression/architecture augmentation.
 */
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "policy/enhanced.hpp"
#include "policy/faascache.hpp"
#include "policy/fixed_keepalive.hpp"
#include "policy/history.hpp"
#include "policy/icebreaker.hpp"
#include "policy/oracle.hpp"
#include "policy/sitw.hpp"
#include "trace/generator.hpp"

using namespace codecrunch;
using namespace codecrunch::policy;

namespace {

/**
 * Minimal PolicyContext: a real cluster plus request recording.
 */
class FakeContext : public PolicyContext
{
  public:
    explicit FakeContext(std::size_t numFunctions = 4)
        : cluster_(cluster::ClusterConfig{})
    {
        trace::TraceConfig config;
        config.numFunctions = numFunctions;
        config.days = 0.01;
        workload_ = trace::TraceGenerator::generate(config);
    }

    const trace::Workload& workload() const override
    {
        return workload_;
    }

    const cluster::Cluster& clusterState() const override
    {
        return cluster_;
    }

    Seconds now() const override { return now_; }

    bool
    requestPrewarm(FunctionId function, NodeType type,
                   Seconds keepAliveSeconds) override
    {
        prewarms.push_back({function, type, keepAliveSeconds});
        return true;
    }

    void
    requestEvict(FunctionId function) override
    {
        evictions.push_back(function);
    }

    void requestEvictContainer(cluster::ContainerId) override {}

    void
    requestCompress(FunctionId function) override
    {
        compressions.push_back(function);
    }

    void
    requestSetKeepAlive(FunctionId function, Seconds seconds) override
    {
        keepAlives.push_back({function, seconds});
    }

    struct Prewarm {
        FunctionId function;
        NodeType type;
        Seconds keepAlive;
    };

    trace::Workload workload_;
    cluster::Cluster cluster_;
    Seconds now_ = 0.0;
    std::vector<Prewarm> prewarms;
    std::vector<FunctionId> evictions;
    std::vector<FunctionId> compressions;
    std::vector<std::pair<FunctionId, Seconds>> keepAlives;
};

metrics::InvocationRecord
record(FunctionId function, Seconds arrival,
       NodeType type = NodeType::X86,
       StartType start = StartType::Cold)
{
    metrics::InvocationRecord r;
    r.function = function;
    r.arrival = arrival;
    r.exec = 1.0;
    r.startup = start == StartType::Cold ? 2.0 : 0.0;
    r.start = start;
    r.nodeType = type;
    return r;
}

} // namespace

// --- FunctionHistory --------------------------------------------------------

TEST(FunctionHistory, TracksIatStatistics)
{
    FunctionHistory h;
    for (int i = 0; i <= 10; ++i)
        h.record(i * 60.0);
    EXPECT_EQ(h.count(), 11u);
    EXPECT_DOUBLE_EQ(h.lastArrival(), 600.0);
    EXPECT_NEAR(h.globalMean(), 60.0, 1e-9);
    EXPECT_NEAR(h.globalStddev(), 0.0, 1e-9);
    EXPECT_NEAR(h.localMean(), 60.0, 1e-9);
    EXPECT_NEAR(h.iatCv(), 0.0, 1e-9);
}

TEST(FunctionHistory, LocalWindowSlides)
{
    FunctionHistory h(3);
    // Early IATs of 10 s, recent IATs of 100 s.
    Seconds t = 0.0;
    for (int i = 0; i < 5; ++i)
        h.record(t += 10.0);
    for (int i = 0; i < 4; ++i)
        h.record(t += 100.0);
    EXPECT_NEAR(h.localMean(), 100.0, 1e-9);
    EXPECT_LT(h.globalMean(), 100.0);
}

TEST(FunctionHistory, IdleQuantileFromHistogram)
{
    FunctionHistory h;
    Seconds t = 0.0;
    // 9 idle gaps of ~2 min, one of ~50 min.
    h.record(t);
    for (int i = 0; i < 9; ++i)
        h.record(t += 125.0);
    h.record(t += 3000.0);
    EXPECT_LE(h.idleQuantile(0.5), 3 * 60.0);
    EXPECT_GE(h.idleQuantile(0.99), 45 * 60.0);
}

TEST(FunctionHistory, GlobalResetClearsStats)
{
    FunctionHistory h;
    for (int i = 0; i < 5; ++i)
        h.record(i * 10.0);
    h.resetGlobal();
    EXPECT_EQ(h.globalCount(), 0u);
    EXPECT_EQ(h.count(), 5u); // invocation count survives
}

TEST(FunctionHistory, MinuteSeriesPlacesCounts)
{
    FunctionHistory h;
    h.record(30.0);   // minute 0
    h.record(90.0);   // minute 1
    h.record(100.0);  // minute 1
    const auto series = h.minuteSeries(3, 4); // minutes 0..3
    ASSERT_EQ(series.size(), 4u);
    EXPECT_DOUBLE_EQ(series[0], 1.0);
    EXPECT_DOUBLE_EQ(series[1], 2.0);
    EXPECT_DOUBLE_EQ(series[2], 0.0);
    EXPECT_EQ(h.recentCount(3, 4), 3u);
}

TEST(FunctionHistory, MinuteWindowForgetsOldMinutes)
{
    FunctionHistory h(10, 3); // keep only 3 distinct minutes
    h.record(10.0);   // minute 0
    h.record(70.0);   // minute 1
    h.record(130.0);  // minute 2
    h.record(190.0);  // minute 3: evicts minute 0
    EXPECT_EQ(h.recentCount(3, 10), 3u);
    const auto series = h.minuteSeries(3, 4);
    EXPECT_DOUBLE_EQ(series[0], 0.0); // minute 0 forgotten
    EXPECT_DOUBLE_EQ(series[3], 1.0);
}

TEST(FunctionHistory, IatCvDistinguishesPatterns)
{
    FunctionHistory periodic, erratic;
    Rng rng(9);
    Seconds tp = 0.0, te = 0.0;
    for (int i = 0; i < 200; ++i) {
        periodic.record(tp += 60.0);
        erratic.record(te += rng.exponential(1.0 / 60.0));
    }
    EXPECT_LT(periodic.iatCv(), 0.01);
    EXPECT_GT(erratic.iatCv(), 0.6);
}

// --- FixedKeepAlive -----------------------------------------------------------

TEST(FixedKeepAlive, ReturnsConfiguredWindow)
{
    FakeContext context;
    FixedKeepAlive policy(300.0, true, NodeType::ARM);
    policy.bind(context);
    EXPECT_EQ(policy.coldPlacement(0), NodeType::ARM);
    const auto decision = policy.onFinish(record(0, 0.0));
    EXPECT_DOUBLE_EQ(decision.keepAliveSeconds, 300.0);
    EXPECT_TRUE(decision.compress);
    EXPECT_EQ(policy.name(), "Fixed+Compress");
}

// --- SitW ------------------------------------------------------------------------

TEST(SitW, DefaultsForUnknownFunctions)
{
    FakeContext context;
    SitW policy;
    policy.bind(context);
    const auto decision = policy.onFinish(record(0, 0.0));
    EXPECT_DOUBLE_EQ(decision.keepAliveSeconds, 600.0);
    EXPECT_FALSE(decision.compress);
}

TEST(SitW, PredictablePatternUsesHistogramTail)
{
    FakeContext context;
    SitW policy;
    policy.bind(context);
    // Perfectly periodic at ~2 min.
    Seconds t = 0.0;
    for (int i = 0; i < 20; ++i)
        policy.onArrival(0, t += 125.0);
    context.now_ = t;
    const auto decision = policy.onFinish(record(0, t));
    // Tail of the idle histogram: ~3 minutes, far below the 10-min
    // default and the 60-min cap.
    EXPECT_GT(decision.keepAliveSeconds, 60.0);
    EXPECT_LE(decision.keepAliveSeconds, 5 * 60.0);
}

TEST(SitW, LongPredictableIdleSchedulesPrewarm)
{
    FakeContext context;
    SitW policy;
    policy.bind(context);
    Seconds t = 0.0;
    for (int i = 0; i < 20; ++i)
        policy.onArrival(0, t += 20 * 60.0); // 20-min period
    context.now_ = t;
    const auto decision = policy.onFinish(record(0, t));
    EXPECT_DOUBLE_EQ(decision.keepAliveSeconds, 0.0); // release now
    policy.onTick(t + 17.0 * 60.0);                   // not due yet
    EXPECT_TRUE(context.prewarms.empty());
    policy.onTick(t + 19.5 * 60.0); // due
    ASSERT_EQ(context.prewarms.size(), 1u);
    EXPECT_EQ(context.prewarms[0].function, 0u);
}

TEST(SitW, ArrivalCancelsPendingPrewarm)
{
    FakeContext context;
    SitW policy;
    policy.bind(context);
    Seconds t = 0.0;
    for (int i = 0; i < 20; ++i)
        policy.onArrival(0, t += 20 * 60.0);
    context.now_ = t;
    policy.onFinish(record(0, t));
    policy.onArrival(0, t + 60.0); // invoked before the prewarm fired
    policy.onTick(t + 19.5 * 60.0);
    EXPECT_TRUE(context.prewarms.empty());
}

TEST(SitW, ErraticPatternFallsBackToDefault)
{
    FakeContext context;
    SitW::Config config;
    config.cvThreshold = 0.5;
    SitW policy(config);
    policy.bind(context);
    Rng rng(3);
    Seconds t = 0.0;
    for (int i = 0; i < 30; ++i)
        policy.onArrival(0, t += rng.pareto(10.0, 1.1));
    context.now_ = t;
    const auto decision = policy.onFinish(record(0, t));
    EXPECT_DOUBLE_EQ(decision.keepAliveSeconds, 600.0);
}

// --- FaasCache ------------------------------------------------------------------

TEST(FaasCache, KeepsUntilEvicted)
{
    FakeContext context;
    FaasCache policy;
    policy.bind(context);
    const auto decision = policy.onFinish(record(0, 0.0));
    EXPECT_DOUBLE_EQ(decision.keepAliveSeconds, 3600.0);
}

TEST(FaasCache, EvictsLowestGreedyDualPriority)
{
    FakeContext context(4);
    FaasCache policy;
    policy.bind(context);
    // Function 1 is hot (high frequency), function 2 cold.
    for (int i = 0; i < 50; ++i)
        policy.onArrival(1, i);
    policy.onArrival(2, 0.0);
    auto& cluster = context.cluster_;
    const auto hotContainer = cluster.addWarm(
        0, 1, context.workload_.profile(1).memoryMb, false, 0.0);
    const auto coldContainer = cluster.addWarm(
        0, 2, context.workload_.profile(2).memoryMb, false, 0.0);
    const auto victim = policy.pickVictim(0, 100.0);
    ASSERT_TRUE(victim.has_value());
    // The victim should be whichever has the lower freq*cost/size
    // priority; verify it is deterministic and re-queryable.
    const auto again = policy.pickVictim(0, 100.0);
    EXPECT_EQ(*victim, *again);
    (void)hotContainer;
    (void)coldContainer;
}

TEST(FaasCache, DeclinesWhenNodeHasNoWarmContainers)
{
    FakeContext context;
    FaasCache policy;
    policy.bind(context);
    EXPECT_FALSE(policy.pickVictim(0, 100.0).has_value());
}

// --- IceBreaker ------------------------------------------------------------------

TEST(IceBreaker, ShortKeepAliveAfterExecution)
{
    FakeContext context;
    IceBreaker policy;
    policy.bind(context);
    const auto decision = policy.onFinish(record(0, 0.0));
    EXPECT_DOUBLE_EQ(decision.keepAliveSeconds, 120.0);
}

TEST(IceBreaker, PrewarmsPeriodicFunctionBeforePrediction)
{
    FakeContext context;
    IceBreaker policy;
    policy.bind(context);
    // Strongly periodic: every 8 minutes.
    Seconds t = 0.0;
    for (int i = 0; i < 20; ++i) {
        t = i * 8.0 * 60.0;
        policy.onArrival(0, t);
    }
    // Just before the next predicted invocation (t + 8 min).
    context.now_ = t + 7.5 * 60.0;
    policy.onTick(context.now_);
    ASSERT_GE(context.prewarms.size(), 1u);
    EXPECT_EQ(context.prewarms[0].function, 0u);
}

TEST(IceBreaker, NoPrewarmWithoutEnoughHistory)
{
    FakeContext context;
    IceBreaker policy;
    policy.bind(context);
    policy.onArrival(0, 0.0);
    policy.onArrival(0, 480.0);
    policy.onTick(900.0);
    EXPECT_TRUE(context.prewarms.empty());
}

TEST(IceBreaker, NoPrewarmWhenAlreadyWarm)
{
    FakeContext context;
    IceBreaker policy;
    policy.bind(context);
    Seconds t = 0.0;
    for (int i = 0; i < 20; ++i) {
        t = i * 8.0 * 60.0;
        policy.onArrival(0, t);
    }
    context.cluster_.addWarm(
        0, 0, context.workload_.profile(0).memoryMb, false, t);
    context.now_ = t + 7.5 * 60.0;
    policy.onTick(context.now_);
    EXPECT_TRUE(context.prewarms.empty());
}

// --- Oracle -----------------------------------------------------------------------

namespace {

/** Context whose workload has two functions with known futures. */
class OracleContext : public FakeContext
{
  public:
    OracleContext() : FakeContext(2)
    {
        workload_.invocations.clear();
        // Function 0: at t = 100, 200, 5000. Function 1: at 150 only.
        workload_.invocations.push_back({0, 100.0, 1.0});
        workload_.invocations.push_back({1, 150.0, 1.0});
        workload_.invocations.push_back({0, 200.0, 1.0});
        workload_.invocations.push_back({0, 5000.0, 1.0});
        workload_.duration = 6000.0;
    }
};

} // namespace

TEST(Oracle, KeepsExactlyUntilNextInvocation)
{
    OracleContext context;
    Oracle policy; // unconstrained budget
    policy.bind(context);
    policy.onArrival(0, 100.0);
    context.now_ = 101.0; // finished at 101
    const auto decision = policy.onFinish(record(0, 100.0));
    EXPECT_NEAR(decision.keepAliveSeconds, 99.0 + 1.0, 1e-6);
}

TEST(Oracle, DropsWhenNeverInvokedAgain)
{
    OracleContext context;
    Oracle policy;
    policy.bind(context);
    policy.onArrival(1, 150.0);
    context.now_ = 151.0;
    const auto decision = policy.onFinish(record(1, 150.0));
    EXPECT_DOUBLE_EQ(decision.keepAliveSeconds, 0.0);
}

TEST(Oracle, DropsBeyondPlatformCap)
{
    OracleContext context;
    Oracle policy;
    policy.bind(context);
    policy.onArrival(0, 100.0);
    policy.onArrival(0, 200.0);
    context.now_ = 201.0; // next at 5000: idle 4799 s > 3600 s
    const auto decision = policy.onFinish(record(0, 200.0));
    EXPECT_DOUBLE_EQ(decision.keepAliveSeconds, 0.0);
}

TEST(Oracle, PlacesOnFasterArchitecture)
{
    OracleContext context;
    Oracle policy;
    policy.bind(context);
    const auto& profile = context.workload_.profile(0);
    EXPECT_EQ(policy.coldPlacement(0), profile.fasterArch());
}

TEST(Oracle, BeladyVictimIsFarthestNextUse)
{
    OracleContext context;
    Oracle policy;
    policy.bind(context);
    auto& cluster = context.cluster_;
    // Function 0 fires next at 100; function 1 at 150.
    const auto c0 = cluster.addWarm(
        0, 0, context.workload_.profile(0).memoryMb, false, 0.0);
    const auto c1 = cluster.addWarm(
        0, 1, context.workload_.profile(1).memoryMb, false, 0.0);
    context.now_ = 0.0;
    const auto victim = policy.pickVictim(0, 100.0);
    ASSERT_TRUE(victim.has_value());
    EXPECT_EQ(*victim, c1);
    (void)c0;
}

// --- Enhanced ---------------------------------------------------------------------

TEST(Enhanced, AddsArchSelectionToInnerPolicy)
{
    FakeContext context;
    Enhanced policy(std::make_unique<FixedKeepAlive>());
    policy.bind(context);
    const auto& profile = context.workload_.profile(0);
    EXPECT_EQ(policy.coldPlacement(0), profile.fasterArch());
    EXPECT_EQ(policy.name(), "Enhanced-Fixed");
}

TEST(Enhanced, CompressesOnlyUnderPressure)
{
    FakeContext context;
    Enhanced::Config config;
    config.compressionPressure = 0.0001; // everything is pressure
    Enhanced pressured(std::make_unique<FixedKeepAlive>(), config);
    pressured.bind(context);
    // Put some warm memory on the cluster so pressure is nonzero.
    context.cluster_.addWarm(0, 0, 1000, false, 0.0);

    // Pick a compression-favorable function.
    FunctionId favorable = kInvalidFunction;
    for (const auto& f : context.workload_.functions) {
        if (f.compressionFavorable(f.fasterArch()) &&
            f.compressedMb < f.memoryMb) {
            favorable = f.id;
            break;
        }
    }
    if (favorable == kInvalidFunction)
        GTEST_SKIP() << "no favorable function in tiny workload";
    const auto decision = pressured.onFinish(record(favorable, 0.0));
    EXPECT_TRUE(decision.compress);

    Enhanced::Config relaxedConfig;
    relaxedConfig.compressionPressure = 0.99;
    Enhanced relaxed(std::make_unique<FixedKeepAlive>(),
                     relaxedConfig);
    relaxed.bind(context);
    EXPECT_FALSE(relaxed.onFinish(record(favorable, 0.0)).compress);
}

TEST(Enhanced, PreservesInnerKeepAliveDecision)
{
    FakeContext context;
    Enhanced policy(std::make_unique<FixedKeepAlive>(321.0));
    policy.bind(context);
    const auto decision = policy.onFinish(record(0, 0.0));
    EXPECT_DOUBLE_EQ(decision.keepAliveSeconds, 321.0);
}

TEST(Enhanced, DisabledFlagsAreTransparent)
{
    FakeContext context;
    Enhanced::Config config;
    config.archSelection = false;
    config.compression = false;
    Enhanced policy(
        std::make_unique<FixedKeepAlive>(600.0, false, NodeType::X86),
        config);
    policy.bind(context);
    EXPECT_EQ(policy.coldPlacement(0), NodeType::X86);
    const auto decision = policy.onFinish(record(0, 0.0));
    EXPECT_FALSE(decision.compress);
    EXPECT_FALSE(decision.warmupLocation.has_value());
}
