/**
 * @file
 * Property and failure-injection tests: global invariants that must
 * survive adversarial scheduling decisions, degenerate workloads, and
 * hostile codec inputs.
 */
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "compress/lz4_codec.hpp"
#include "compress/lz4hc_codec.hpp"
#include "compress/range_lz_codec.hpp"
#include "compress/image_synth.hpp"
#include "core/budget.hpp"
#include "core/codecrunch.hpp"
#include "experiments/driver.hpp"
#include "experiments/harness.hpp"
#include "policy/fixed_keepalive.hpp"
#include "trace/generator.hpp"

using namespace codecrunch;
using namespace codecrunch::experiments;

namespace {

/**
 * Chaos policy: every decision is random — random keep-alive windows,
 * random compression, random cross-architecture warmups, random
 * evictions, random prewarms, random keep-alive rewrites at ticks.
 * Any capacity or accounting violation it provokes panics the
 * Cluster, so a clean run is the invariant check.
 */
class ChaosPolicy : public policy::Policy
{
  public:
    explicit ChaosPolicy(std::uint64_t seed) : rng_(seed) {}

    std::string name() const override { return "Chaos"; }

    NodeType
    coldPlacement(FunctionId) override
    {
        return rng_.bernoulli(0.5) ? NodeType::X86 : NodeType::ARM;
    }

    policy::KeepAliveDecision
    onFinish(const metrics::InvocationRecord& record) override
    {
        policy::KeepAliveDecision decision;
        decision.keepAliveSeconds = rng_.uniform(0.0, 1800.0);
        decision.compress = rng_.bernoulli(0.4);
        if (rng_.bernoulli(0.2)) {
            decision.warmupLocation =
                record.nodeType == NodeType::X86 ? NodeType::ARM
                                                 : NodeType::X86;
        }
        return decision;
    }

    void
    onTick(Seconds) override
    {
        const auto& functions = context_->workload().functions;
        if (functions.empty())
            return;
        for (int action = 0; action < 5; ++action) {
            const FunctionId f = static_cast<FunctionId>(
                rng_.next() % functions.size());
            switch (rng_.next() % 4) {
              case 0:
                context_->requestEvict(f);
                break;
              case 1:
                context_->requestCompress(f);
                break;
              case 2:
                context_->requestSetKeepAlive(
                    f, rng_.uniform(0.0, 1200.0));
                break;
              default:
                context_->requestPrewarm(
                    f,
                    rng_.bernoulli(0.5) ? NodeType::X86
                                        : NodeType::ARM,
                    rng_.uniform(30.0, 900.0));
                break;
            }
        }
    }

    std::optional<cluster::ContainerId>
    pickVictim(NodeId node, MegaBytes) override
    {
        // Sometimes decline, sometimes hand back an arbitrary (maybe
        // wrong-node) container — the driver must validate it.
        const auto& pool = context_->clusterState().warmPool();
        if (pool.empty() || rng_.bernoulli(0.3))
            return std::nullopt;
        std::size_t skip = rng_.next() % pool.size();
        for (const auto& [id, container] : pool) {
            if (skip-- == 0) {
                (void)node;
                return id;
            }
        }
        return std::nullopt;
    }

  private:
    Rng rng_;
};

} // namespace

struct ChaosCase {
    std::uint64_t seed;
    std::size_t functions;
    double warmFraction;
};

class ChaosSweep : public ::testing::TestWithParam<ChaosCase>
{
};

TEST_P(ChaosSweep, InvariantsSurviveAdversarialDecisions)
{
    const auto& param = GetParam();
    trace::TraceConfig traceConfig;
    traceConfig.numFunctions = param.functions;
    traceConfig.days = 0.05;
    traceConfig.targetMeanRatePerSecond = 2.0;
    traceConfig.seed = param.seed;
    const auto workload = trace::TraceGenerator::generate(traceConfig);

    cluster::ClusterConfig clusterConfig;
    clusterConfig.numX86 = 3;
    clusterConfig.numArm = 3;
    clusterConfig.keepAliveMemoryFraction = param.warmFraction;

    ChaosPolicy policy(param.seed * 7919);
    Driver driver(workload, clusterConfig, policy);
    const auto result = driver.run();

    // 1. Conservation: every invocation is either served or counted
    //    as unserved.
    EXPECT_EQ(result.metrics.invocations() + result.unserved,
              workload.invocations.size());
    // 2. Service-time identity holds for every record.
    for (const auto& r : result.metrics.records()) {
        EXPECT_NEAR(r.service(), r.wait + r.startup + r.exec, 1e-9);
        EXPECT_GE(r.wait, -1e-9);
        EXPECT_GE(r.startup, -1e-9);
    }
    // 3. Cost accounting is non-negative and finite.
    EXPECT_GE(result.keepAliveSpend, 0.0);
    EXPECT_LT(result.keepAliveSpend, 1e6);
    // 4. Start-type counters are consistent.
    EXPECT_EQ(result.metrics.warmStarts() +
                  result.metrics.coldStarts(),
              result.metrics.invocations());
    EXPECT_LE(result.metrics.compressedStarts(),
              result.metrics.warmStarts());
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ChaosSweep,
    ::testing::Values(ChaosCase{1, 60, 0.1}, ChaosCase{2, 60, 0.5},
                      ChaosCase{3, 150, 0.25}, ChaosCase{4, 20, 1.0},
                      ChaosCase{5, 150, 0.05},
                      ChaosCase{6, 40, 0.75}));

// --- degenerate workloads ----------------------------------------------------

TEST(DegenerateWorkloads, SingleInvocation)
{
    trace::Workload workload;
    trace::FunctionProfile f;
    f.id = 0;
    f.memoryMb = 128;
    f.exec[0] = f.exec[1] = 1.0;
    f.coldStart[0] = f.coldStart[1] = 1.0;
    workload.functions.push_back(f);
    workload.invocations.push_back({0, 0.0, 1.0});
    workload.duration = 60.0;

    policy::FixedKeepAlive policy;
    Driver driver(workload, cluster::ClusterConfig{}, policy);
    const auto result = driver.run();
    EXPECT_EQ(result.metrics.invocations(), 1u);
    EXPECT_EQ(result.metrics.coldStarts(), 1u);
}

TEST(DegenerateWorkloads, ZeroBudgetCodeCrunchStillServes)
{
    trace::TraceConfig config;
    config.numFunctions = 50;
    config.days = 0.05;
    const auto workload = trace::TraceGenerator::generate(config);
    core::CodeCrunchConfig ccConfig;
    ccConfig.budgetRatePerSecond = 1e-12; // effectively zero budget
    core::CodeCrunch policy(ccConfig);
    Driver driver(workload, cluster::ClusterConfig{}, policy);
    const auto result = driver.run();
    EXPECT_EQ(result.unserved, 0u);
    // Without budget, essentially everything misses after bootstrap.
    EXPECT_LT(result.metrics.warmStartFraction(), 0.9);
}

TEST(DegenerateWorkloads, SimultaneousBurstOnTinyCluster)
{
    trace::Workload workload;
    trace::FunctionProfile f;
    f.id = 0;
    f.memoryMb = 512;
    f.exec[0] = f.exec[1] = 0.5;
    f.coldStart[0] = f.coldStart[1] = 0.5;
    workload.functions.push_back(f);
    for (int i = 0; i < 64; ++i)
        workload.invocations.push_back({0, 1.0, 1.0});
    workload.duration = 300.0;

    cluster::ClusterConfig clusterConfig;
    clusterConfig.numX86 = 1;
    clusterConfig.numArm = 0;
    clusterConfig.coresPerNode = 2;
    clusterConfig.memoryPerNodeMb = 2048;
    policy::FixedKeepAlive policy;
    Driver driver(workload, clusterConfig, policy);
    const auto result = driver.run();
    EXPECT_EQ(result.unserved, 0u);
    EXPECT_EQ(result.metrics.invocations(), 64u);
    // Only 2 cores: the burst serializes, so waits must be large.
    EXPECT_GT(result.metrics.meanWaitTime(), 1.0);
}

// --- codec stream mutation fuzzing ----------------------------------------------

namespace {

template <typename CodecT>
void
mutationFuzz(std::uint64_t seed)
{
    const CodecT codec;
    compress::ImageSpec spec{8192, 0.6, seed};
    const compress::Bytes image =
        compress::ImageSynthesizer::generate(spec);
    const compress::Bytes packed = codec.compress(image);
    Rng rng(seed ^ 0xf22dull);
    for (int trial = 0; trial < 300; ++trial) {
        compress::Bytes mutated = packed;
        const std::size_t flips = 1 + rng.next() % 4;
        for (std::size_t f = 0; f < flips; ++f) {
            mutated[rng.next() % mutated.size()] ^=
                static_cast<std::uint8_t>(1 + rng.next() % 255);
        }
        // Must never crash; may reject or produce wrong bytes of the
        // right length, but never the original data by accident when
        // the mutation hit a load-bearing byte... just exercise it.
        const auto out = codec.decompress(mutated, image.size());
        if (out) {
            EXPECT_EQ(out->size(), image.size());
        }
    }
}

} // namespace

TEST(CodecFuzz, Lz4SurvivesStreamMutation)
{
    mutationFuzz<compress::Lz4Codec>(11);
}

TEST(CodecFuzz, Lz4HcSurvivesStreamMutation)
{
    mutationFuzz<compress::Lz4HcCodec>(12);
}

TEST(CodecFuzz, RangeLzSurvivesStreamMutation)
{
    mutationFuzz<compress::RangeLzCodec>(13);
}

// --- report invariants across randomized seeds -------------------------------
//
// The golden harness diffs every aggregate writeResultFields() emits;
// these properties pin down what those aggregates are allowed to look
// like on ANY seed, not just the checked-in ones: finite, fractions in
// [0, 1], and SLA accounting bounded and monotone in the slack.

namespace {

void
checkReportInvariants(const Harness& harness, const RunResult& result)
{
    const auto& m = result.metrics;
    EXPECT_TRUE(std::isfinite(m.meanServiceTime()));
    EXPECT_TRUE(std::isfinite(m.meanWaitTime()));
    for (const double q : {0.5, 0.95, 0.99}) {
        EXPECT_TRUE(std::isfinite(m.serviceQuantile(q)));
        EXPECT_GE(m.serviceQuantile(q), 0.0);
    }
    EXPECT_LE(m.serviceQuantile(0.5), m.serviceQuantile(0.95));
    EXPECT_LE(m.serviceQuantile(0.95), m.serviceQuantile(0.99));

    EXPECT_GE(m.warmStartFraction(), 0.0);
    EXPECT_LE(m.warmStartFraction(), 1.0);
    EXPECT_GE(m.availability(), 0.0);
    EXPECT_LE(m.availability(), 1.0);

    EXPECT_TRUE(std::isfinite(result.keepAliveSpend));
    EXPECT_GE(result.keepAliveSpend, 0.0);

    const auto baselines = harness.warmBaselines();
    double previous = 1.0;
    for (const double slack : {0.0, 0.1, 0.3, 0.5, 1.0}) {
        const double violations =
            m.slaViolationFraction(baselines, slack);
        EXPECT_GE(violations, 0.0) << "slack " << slack;
        EXPECT_LE(violations, 1.0) << "slack " << slack;
        // More slack can only excuse functions, never indict more.
        EXPECT_LE(violations, previous + 1e-12)
            << "slack " << slack;
        previous = violations;
    }
}

} // namespace

class ReportInvariants : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(ReportInvariants, FixedKeepAliveAggregatesAreWellFormed)
{
    Scenario scenario = Scenario::goldenPreset();
    scenario.traceConfig.seed = GetParam();
    const Harness harness(scenario);
    policy::FixedKeepAlive policy(600.0, true);
    checkReportInvariants(harness, harness.run(policy));
}

TEST_P(ReportInvariants, CodeCrunchAggregatesAreWellFormed)
{
    Scenario scenario = Scenario::goldenPreset();
    scenario.traceConfig.seed = GetParam() ^ 0x5eedull;
    const Harness harness(scenario);
    core::CodeCrunch policy(harness.codecrunchConfig());
    checkReportInvariants(harness, harness.run(policy));
}

INSTANTIATE_TEST_SUITE_P(Seeds, ReportInvariants,
                         ::testing::Values(1u, 17u, 4242u, 99991u));

// --- crash-consistent budget accounting --------------------------------------
//
// Two ledgers must balance on ANY seed: the creditor's grant ledger
// (granted == spent + remaining credit after every allocation, floor
// top-ups recorded explicitly) and the cluster's keep-alive commitment
// ledger (committed == consumed + refunded + outstanding), including
// under crash/shock/domain fault churn where evictions refund their
// unspent commitments.

TEST(BudgetProperties, GrantedEqualsSpentPlusCreditUnderRandomSpend)
{
    for (const std::uint64_t seed : {1ull, 17ull, 99ull, 4242ull}) {
        Rng rng(seed);
        core::BudgetCreditor creditor(rng.uniform(0.1, 5.0), 60.0);
        for (int i = 0; i < 300; ++i) {
            const Dollars spent = rng.uniform(0.0, 400.0);
            const Dollars grant = creditor.allocate(spent);
            EXPECT_NEAR(creditor.grantedTotal(), spent + grant, 1e-9);
            const Dollars excess =
                creditor.grantedTotal() - creditor.allocatedTotal();
            EXPECT_GE(excess, -1e-9);
            EXPECT_LE(excess, creditor.floorGrantedTotal() + 1e-9);
        }
    }
}

struct FaultSeedCase {
    std::uint64_t seed;
    bool domains;
};

class FaultLedgerSweep : public ::testing::TestWithParam<FaultSeedCase>
{
};

TEST_P(FaultLedgerSweep, CommitmentAndCreditorLedgersBalance)
{
    const auto& param = GetParam();
    trace::TraceConfig traceConfig;
    traceConfig.numFunctions = 60;
    traceConfig.days = 0.05;
    traceConfig.seed = param.seed;
    const auto workload = trace::TraceGenerator::generate(traceConfig);

    cluster::ClusterConfig clusterConfig;
    clusterConfig.numX86 = 3;
    clusterConfig.numArm = 3;
    if (param.domains) {
        clusterConfig.numFaultDomains = 3;
        clusterConfig.domainCooldownSeconds = 300.0;
    }

    DriverConfig driverConfig;
    driverConfig.faults.seed = param.seed * 2654435761ull + 1;
    driverConfig.faults.nodeMtbfSeconds = 1800.0;
    driverConfig.faults.nodeMttrSeconds = 300.0;
    driverConfig.faults.memoryShockMtbfSeconds = 2400.0;
    driverConfig.faults.transientFailureProbability = 1e-3;
    if (param.domains) {
        driverConfig.faults.domainMtbfSeconds = 2700.0;
        driverConfig.faults.domainMttrSeconds = 300.0;
        driverConfig.faults.domainShockMtbfSeconds = 3600.0;
    }

    core::CodeCrunch policy{core::CodeCrunchConfig{}};
    Driver driver(workload, clusterConfig, policy, driverConfig);
    const auto result = driver.run();

    // Conservation under churn.
    EXPECT_EQ(result.metrics.records().size() +
                  result.metrics.permanentFailures() + result.unserved,
              workload.invocations.size());
    EXPECT_GT(result.nodeCrashes, 0u);

    // Commitment ledger: every committed dollar is consumed, refunded,
    // or still outstanding — crashes must not leak money.
    EXPECT_GT(result.committedDollars, 0.0);
    const Dollars balanced = result.commitmentConsumedDollars +
                             result.refundedDollars +
                             result.outstandingCommitmentDollars;
    EXPECT_NEAR(result.committedDollars, balanced,
                1e-9 * std::max(1.0, result.committedDollars));
    EXPECT_GE(result.faultRefundedDollars, 0.0);
    EXPECT_GE(result.refundedDollars,
              result.faultRefundedDollars - 1e-12);

    // Creditor ledger: granted == spent + remaining credit held at
    // every allocation, so the cumulative grant can exceed the
    // cumulative allocation only by the recorded floor top-ups.
    const core::BudgetCreditor* creditor = policy.creditor();
    ASSERT_NE(creditor, nullptr);
    const Dollars excess =
        creditor->grantedTotal() - creditor->allocatedTotal();
    EXPECT_GE(excess, -1e-9);
    EXPECT_LE(excess, creditor->floorGrantedTotal() + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    Seeds, FaultLedgerSweep,
    ::testing::Values(FaultSeedCase{11, false}, FaultSeedCase{12, true},
                      FaultSeedCase{13, true}, FaultSeedCase{14, false},
                      FaultSeedCase{15, true}));
