/**
 * @file
 * Tests for the parallel experiment runner: thread-pool behaviour
 * (stress, exception propagation, shutdown draining), deterministic
 * seeding, plan-order result collection, and — the core contract —
 * bit-identical results between multi-threaded and serial execution
 * of the same plan.
 */
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <fstream>
#include <mutex>
#include <sstream>
#include <stdexcept>
#include <thread>
#include <vector>

#include "runner/engine.hpp"
#include "runner/progress.hpp"
#include "runner/report.hpp"

using namespace codecrunch;
using namespace codecrunch::experiments;
using namespace codecrunch::runner;

namespace {

/** A scenario small enough for many runs per test. */
Scenario
tinyScenario()
{
    Scenario scenario = Scenario::small();
    scenario.traceConfig.numFunctions = 40;
    scenario.traceConfig.days = 0.08;
    scenario.traceConfig.targetMeanRatePerSecond = 1.0;
    return scenario;
}

/**
 * Expect every deterministic field of two results to be bit-identical
 * (wall-clock observables like decisionWallSeconds are excluded).
 */
void
expectIdentical(const RunResult& a, const RunResult& b)
{
    EXPECT_EQ(a.metrics.invocations(), b.metrics.invocations());
    EXPECT_EQ(a.metrics.meanServiceTime(),
              b.metrics.meanServiceTime());
    EXPECT_EQ(a.metrics.meanWaitTime(), b.metrics.meanWaitTime());
    EXPECT_EQ(a.metrics.warmStarts(), b.metrics.warmStarts());
    EXPECT_EQ(a.metrics.coldStarts(), b.metrics.coldStarts());
    EXPECT_EQ(a.metrics.compressedStarts(),
              b.metrics.compressedStarts());
    EXPECT_EQ(a.metrics.compressions(), b.metrics.compressions());
    for (const double q : {0.1, 0.5, 0.9, 0.95, 0.99}) {
        EXPECT_EQ(a.metrics.serviceQuantile(q),
                  b.metrics.serviceQuantile(q))
            << "quantile " << q;
    }
    EXPECT_EQ(a.keepAliveSpend, b.keepAliveSpend);
    EXPECT_EQ(a.unserved, b.unserved);
    EXPECT_EQ(a.coldNoContainer, b.coldNoContainer);
    EXPECT_EQ(a.coldContainerCoreBusy, b.coldContainerCoreBusy);
    EXPECT_EQ(a.coldContainerNoMemory, b.coldContainerNoMemory);
    EXPECT_EQ(a.endExpired, b.endExpired);
    EXPECT_EQ(a.endConsumed, b.endConsumed);
    EXPECT_EQ(a.endEvictedForExec, b.endEvictedForExec);
    EXPECT_EQ(a.endEvictedForKeep, b.endEvictedForKeep);
    EXPECT_EQ(a.endEvictedByPolicy, b.endEvictedByPolicy);
    EXPECT_EQ(a.keepDropped, b.keepDropped);
    ASSERT_EQ(a.metrics.records().size(), b.metrics.records().size());
}

/** Progress sink recording call counts for wiring tests. */
class CountingSink final : public ProgressSink
{
  public:
    void
    planStarted(const std::string&, std::size_t jobCount) override
    {
        planJobs = jobCount;
    }
    void
    jobStarted(std::size_t, const std::string&, Seconds) override
    {
        ++started;
    }
    void
    jobHeartbeat(std::size_t, Seconds simNow) override
    {
        ++heartbeats;
        lastSim = simNow;
    }
    void
    jobFinished(std::size_t, bool success) override
    {
        ++finished;
        allSucceeded = allSucceeded && success;
    }
    void planFinished() override { ++plansFinished; }

    std::size_t planJobs = 0;
    std::atomic<std::size_t> started{0};
    std::atomic<std::size_t> heartbeats{0};
    std::atomic<std::size_t> finished{0};
    std::atomic<Seconds> lastSim{0.0};
    std::atomic<std::size_t> plansFinished{0};
    std::atomic<bool> allSucceeded{true};
};

} // namespace

TEST(ThreadPool, RunsManyTinyJobs)
{
    std::atomic<int> counter{0};
    {
        ThreadPool pool(4);
        EXPECT_EQ(pool.threadCount(), 4u);
        for (int i = 0; i < 10000; ++i)
            pool.submit([&counter] { ++counter; });
    } // destructor drains and joins
    EXPECT_EQ(counter.load(), 10000);
}

TEST(ThreadPool, NestedSubmissionsComplete)
{
    std::atomic<int> counter{0};
    {
        ThreadPool pool(3);
        for (int i = 0; i < 50; ++i) {
            pool.submit([&pool, &counter] {
                for (int j = 0; j < 20; ++j)
                    pool.submit([&counter] { ++counter; });
            });
        }
        // Give outer tasks a moment so inner ones are queued before
        // shutdown begins; shutdown must then drain them all.
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
    EXPECT_EQ(counter.load(), 50 * 20);
}

TEST(ThreadPool, ExceptionsPropagateThroughFutures)
{
    ThreadPool pool(2);
    auto ok = pool.submitTask([] { return 41 + 1; });
    auto bad = pool.submitTask(
        []() -> int { throw std::runtime_error("boom"); });
    EXPECT_EQ(ok.get(), 42);
    EXPECT_THROW(bad.get(), std::runtime_error);
}

TEST(ThreadPool, ShutdownDrainsQueuedTasks)
{
    std::atomic<int> counter{0};
    {
        ThreadPool pool(1);
        // Head task blocks the single worker so the rest are still
        // queued when the destructor runs.
        pool.submit([] {
            std::this_thread::sleep_for(
                std::chrono::milliseconds(30));
        });
        for (int i = 0; i < 100; ++i)
            pool.submit([&counter] { ++counter; });
    }
    EXPECT_EQ(counter.load(), 100);
}

TEST(SeedForKey, StableAndKeyDependent)
{
    const std::uint64_t a = seedForKey("fig13/CodeCrunch@0.25x");
    EXPECT_EQ(a, seedForKey("fig13/CodeCrunch@0.25x"));
    EXPECT_NE(a, seedForKey("fig13/CodeCrunch@0.50x"));
    EXPECT_NE(a, seedForKey("fig13/CodeCrunch@0.25x", 1));
    EXPECT_NE(seedForKey(""), seedForKey("x"));
}

TEST(RunEngine, ResultsComeBackInPlanOrder)
{
    RunEngine engine({4, nullptr});
    Plan<int> plan("order");
    for (int i = 0; i < 8; ++i) {
        plan.add("job" + std::to_string(i),
                 static_cast<std::uint64_t>(i),
                 [i](const JobContext&) {
                     // Later jobs finish first.
                     std::this_thread::sleep_for(
                         std::chrono::milliseconds(8 - i));
                     return i;
                 });
    }
    const auto results = engine.run(plan);
    ASSERT_EQ(results.size(), 8u);
    for (int i = 0; i < 8; ++i)
        EXPECT_EQ(results[i], i);
}

TEST(RunEngine, JobExceptionIsRethrownAfterPlanSettles)
{
    RunEngine engine({2, nullptr});
    Plan<int> plan("throwing");
    std::atomic<int> completed{0};
    plan.add("ok1", 0, [&](const JobContext&) {
        ++completed;
        return 1;
    });
    plan.add("bad", 0, [](const JobContext&) -> int {
        throw std::runtime_error("job failed");
    });
    plan.add("ok2", 0, [&](const JobContext&) {
        ++completed;
        return 2;
    });
    EXPECT_THROW(engine.run(plan), std::runtime_error);
    // Sibling jobs still ran to completion; the engine stays usable.
    EXPECT_EQ(completed.load(), 2);
    Plan<int> again("after");
    again.add("j", 0, [](const JobContext&) { return 7; });
    EXPECT_EQ(engine.run(again).front(), 7);
}

TEST(RunEngine, ProgressSinkSeesEveryJobAndHeartbeats)
{
    CountingSink sink;
    RunEngine engine({2, &sink});
    Harness harness(tinyScenario());
    SimPlan plan("progress");
    addSimJob(plan, "FixedKeepAlive", harness, [] {
        return std::make_unique<policy::FixedKeepAlive>();
    });
    addSimJob(plan, "SitW", harness,
              [] { return std::make_unique<policy::SitW>(); });
    engine.run(plan);
    EXPECT_EQ(sink.planJobs, 2u);
    EXPECT_EQ(sink.started.load(), 2u);
    EXPECT_EQ(sink.finished.load(), 2u);
    EXPECT_EQ(sink.plansFinished.load(), 1u);
    EXPECT_TRUE(sink.allSucceeded.load());
    // One heartbeat per optimizer tick per job.
    EXPECT_GT(sink.heartbeats.load(), 10u);
    EXPECT_GT(sink.lastSim.load(), 0.0);
}

TEST(RunEngine, ParallelResultsAreBitIdenticalToSerial)
{
    Harness harness(tinyScenario());

    const auto buildPlan = [&] {
        SimPlan plan("determinism");
        addSimJob(plan, "SitW", harness,
                  [] { return std::make_unique<policy::SitW>(); });
        addSimJob(plan, "FixedKeepAlive", harness, [] {
            return std::make_unique<policy::FixedKeepAlive>();
        });
        addSimJob(plan, "FaasCache", harness, [] {
            return std::make_unique<policy::FaasCache>();
        });
        addSimJob(plan, "IceBreaker", harness, [] {
            return std::make_unique<policy::IceBreaker>();
        });
        return plan;
    };

    // Serial reference: plain Harness::run on the caller's thread.
    std::vector<RunResult> serial;
    {
        policy::SitW sitw;
        serial.push_back(harness.run(sitw));
        policy::FixedKeepAlive fixed;
        serial.push_back(harness.run(fixed));
        policy::FaasCache faascache;
        serial.push_back(harness.run(faascache));
        policy::IceBreaker icebreaker;
        serial.push_back(harness.run(icebreaker));
    }

    RunEngine oneThread({1, nullptr});
    const auto single = oneThread.run(buildPlan());
    RunEngine fourThreads({4, nullptr});
    const auto parallel = fourThreads.run(buildPlan());
    ASSERT_EQ(single.size(), serial.size());
    ASSERT_EQ(parallel.size(), serial.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
        expectIdentical(serial[i], single[i]);
        expectIdentical(serial[i], parallel[i]);
    }
}

TEST(RunEngine, MainComparisonMatchesSerialLoop)
{
    Harness harness(tinyScenario());

    // Serial reference (the pre-engine Harness::runMainComparison
    // sequence: each policy via Harness::run, budget from the lazy
    // SitW rate).
    std::vector<PolicyRun> serial;
    {
        policy::SitW sitw;
        serial.push_back(harness.runNamed(sitw));
        policy::FaasCache faascache;
        serial.push_back(harness.runNamed(faascache));
        policy::IceBreaker icebreaker;
        serial.push_back(harness.runNamed(icebreaker));
        core::CodeCrunch codecrunch(harness.codecrunchConfig());
        serial.push_back(harness.runNamed(codecrunch));
        policy::Oracle oracle(harness.oracleConfig());
        serial.push_back(harness.runNamed(oracle));
    }

    RunEngine engine({4, nullptr});
    const auto runs = runMainComparison(harness, engine);
    ASSERT_EQ(runs.size(), 5u);
    EXPECT_EQ(runs[0].name, "SitW");
    EXPECT_EQ(runs[1].name, "FaasCache");
    EXPECT_EQ(runs[2].name, "IceBreaker");
    EXPECT_EQ(runs[3].name, "CodeCrunch");
    EXPECT_EQ(runs[4].name, "Oracle");
    for (std::size_t i = 0; i < runs.size(); ++i)
        expectIdentical(serial[i].result, runs[i].result);
}

TEST(Harness, BudgetRateIsPrimableAndThreadSafe)
{
    Harness harness(tinyScenario());
    EXPECT_FALSE(harness.hasBudgetRate());

    policy::SitW sitw;
    const RunResult sitwResult = harness.run(sitw);
    const double primed = harness.primeBudgetRate(sitwResult);
    EXPECT_GT(primed, 0.0);
    EXPECT_TRUE(harness.hasBudgetRate());
    // The lazy path observes the primed value instead of re-running.
    EXPECT_EQ(harness.sitwBudgetRate(), primed);
    // Priming again does not overwrite.
    EXPECT_EQ(harness.primeBudgetRate(sitwResult), primed);

    // Concurrent readers agree.
    std::vector<std::thread> threads;
    std::vector<double> rates(4, -1.0);
    for (std::size_t i = 0; i < rates.size(); ++i) {
        threads.emplace_back([&harness, &rates, i] {
            rates[i] = harness.sitwBudgetRate();
        });
    }
    for (auto& thread : threads)
        thread.join();
    for (const double rate : rates)
        EXPECT_EQ(rate, primed);
}

TEST(Report, WritesDiffableJsonArtifact)
{
    Harness harness(tinyScenario());
    policy::FixedKeepAlive fixed;
    std::vector<PolicyRun> runs;
    runs.push_back(harness.runNamed(fixed));

    const std::string path =
        ::testing::TempDir() + "runner_report_test/out.json";
    ReportMeta meta;
    meta.bench = "runner_test";
    meta.numbers.emplace_back("answer", 42.0);
    writeRunReport(path, meta, runs);
    writeRunReport(path + ".again", meta, runs);

    const auto slurp = [](const std::string& p) {
        std::ifstream in(p);
        std::stringstream ss;
        ss << in.rdbuf();
        return ss.str();
    };
    const std::string text = slurp(path);
    EXPECT_NE(text.find("\"bench\": \"runner_test\""),
              std::string::npos);
    EXPECT_NE(text.find("\"answer\": 42"), std::string::npos);
    EXPECT_NE(text.find("\"mean_service_s\""), std::string::npos);
    EXPECT_NE(text.find("\"invocations\""), std::string::npos);
    // Deterministic fields only: two exports are byte-identical.
    EXPECT_EQ(text, slurp(path + ".again"));
    std::remove(path.c_str());
    std::remove((path + ".again").c_str());
}

TEST(Report, EmptyPathIsANoOp)
{
    ReportMeta meta;
    meta.bench = "noop";
    writeBenchReport("", meta, {});
    writeRunReport("", meta, {});
}

// bench/out hygiene: an unwritable artifact path must kill the bench
// with a diagnostic, never silently drop the report (fatal exits 1).

TEST(ReportDeathTest, UnreachableParentDirectoryIsFatal)
{
    ReportMeta meta;
    meta.bench = "doomed";
    // /dev/null is a file, so no subdirectory can be created below it.
    EXPECT_EXIT(
        writeBenchReport("/dev/null/sub/out.json", meta, {}),
        ::testing::ExitedWithCode(1), "report: cannot create");
}

TEST(ReportDeathTest, UnopenablePathIsFatal)
{
    ReportMeta meta;
    meta.bench = "doomed";
    // The target itself is an existing directory: the atomic write
    // lands in <path>.tmp and the final rename over it cannot.
    const std::string dir = ::testing::TempDir() + "report_is_a_dir";
    std::filesystem::create_directories(dir);
    EXPECT_EXIT(writeBenchReport(dir, meta, {}),
                ::testing::ExitedWithCode(1), "report: cannot rename");
}

// --- Eventcount wakeup + parallelFor (PR 6) ----------------------------

TEST(ThreadPool, SubmitContentionFromManyThreads)
{
    // Regression for the eventcount submit fast path: many external
    // threads hammering submit() concurrently must neither lose tasks
    // nor deadlock, whether workers are parked or busy.
    ThreadPool pool(4);
    constexpr std::size_t kSubmitters = 8;
    constexpr std::size_t kPerSubmitter = 2000;
    std::atomic<std::size_t> ran{0};
    std::mutex doneMutex;
    std::condition_variable doneCv;
    std::vector<std::thread> submitters;
    for (std::size_t t = 0; t < kSubmitters; ++t) {
        submitters.emplace_back([&] {
            for (std::size_t i = 0; i < kPerSubmitter; ++i) {
                pool.submit([&] {
                    if (ran.fetch_add(1) + 1 ==
                        kSubmitters * kPerSubmitter) {
                        std::lock_guard<std::mutex> lock(doneMutex);
                        doneCv.notify_all();
                    }
                });
            }
        });
    }
    for (auto& thread : submitters)
        thread.join();
    std::unique_lock<std::mutex> lock(doneMutex);
    ASSERT_TRUE(doneCv.wait_for(lock, std::chrono::seconds(60), [&] {
        return ran.load() == kSubmitters * kPerSubmitter;
    }));
}

TEST(ThreadPool, BusyWorkersAreNotReNotifiedPerSubmit)
{
    // With every worker busy, no worker is parked, so the submit fast
    // path must see sleepers == 0 (no lock, no notify). We can't
    // observe "no notify" directly, but we can observe the sleeper
    // count the fast path keys off.
    ThreadPool pool(2);
    std::atomic<bool> release{false};
    std::atomic<int> started{0};
    for (int i = 0; i < 2; ++i) {
        pool.submit([&] {
            started.fetch_add(1);
            while (!release.load())
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(1));
        });
    }
    while (started.load() < 2)
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    EXPECT_EQ(pool.sleepersApprox(), 0u);
    std::atomic<int> queued{0};
    for (int i = 0; i < 100; ++i)
        pool.submit([&] { queued.fetch_add(1); });
    EXPECT_EQ(pool.sleepersApprox(), 0u);
    release.store(true);
    while (queued.load() < 100)
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
}

TEST(ThreadPool, IdleWorkersParkAndWakeOnSubmit)
{
    ThreadPool pool(3);
    // Give the workers a moment to go idle and park.
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::seconds(10);
    while (pool.sleepersApprox() < 3 &&
           std::chrono::steady_clock::now() < deadline)
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    EXPECT_EQ(pool.sleepersApprox(), 3u);
    std::atomic<bool> ran{false};
    pool.submit([&] { ran.store(true); });
    const auto runDeadline = std::chrono::steady_clock::now() +
                             std::chrono::seconds(10);
    while (!ran.load() &&
           std::chrono::steady_clock::now() < runDeadline)
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    EXPECT_TRUE(ran.load());
}

TEST(ThreadPool, ParallelForRunsEveryIndexOnce)
{
    ThreadPool pool(4);
    std::vector<std::atomic<int>> hits(257);
    pool.parallelFor(hits.size(), [&](std::size_t i) {
        hits[i].fetch_add(1);
    });
    for (const auto& hit : hits)
        EXPECT_EQ(hit.load(), 1);
}

TEST(ThreadPool, ParallelForFromInsidePoolTaskDoesNotDeadlock)
{
    // The SRE optimizer calls parallelFor from inside a runner job;
    // even on a 1-thread pool the caller claims all items itself.
    ThreadPool pool(1);
    std::atomic<int> total{0};
    auto future = pool.submitTask([&] {
        ParallelExecutor* executor = currentParallelExecutor();
        EXPECT_EQ(executor, &pool);
        executor->parallelFor(
            64, [&](std::size_t) { total.fetch_add(1); });
        return total.load();
    });
    EXPECT_EQ(future.get(), 64);
}

TEST(ThreadPool, ParallelForPropagatesExceptions)
{
    ThreadPool pool(4);
    EXPECT_THROW(pool.parallelFor(32,
                                  [&](std::size_t i) {
                                      if (i == 17)
                                          throw std::runtime_error(
                                              "boom");
                                  }),
                 std::runtime_error);
}
