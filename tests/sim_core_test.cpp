/**
 * @file
 * Tests for the rebuilt simulation core (the scale tentpole):
 *
 *  - Differential queue suite: the calendar/ladder EventQueue replayed
 *    side by side with the retired binary-heap implementation
 *    (legacy_heap_queue.hpp) over a seeded ~10^6-operation stream of
 *    schedules, same-timestamp bursts, cancellations, steps and
 *    bounded runs — the fire sequences must match element for element,
 *    which is the proof that every golden artifact survives the
 *    rewrite.
 *  - Ladder-specific ordering: FIFO within a timestamp across Top
 *    spills and epoch boundaries, where a calendar queue could
 *    plausibly reorder.
 *  - Arena property tests: non-overlapping stable storage, alignment,
 *    poison-on-reset (0xDD), chunk reuse.
 *  - SlotPool: dense indices, LIFO slot recycling (determinism),
 *    stable addresses, ascending forEach, destructor discipline.
 *  - FunctionStateTable: struct-of-arrays columns replayed against a
 *    plain array-of-structs oracle over a random mutation stream.
 */
#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <limits>
#include <utility>
#include <vector>

#include "common/rng.hpp"
#include "sim/arena.hpp"
#include "sim/event_queue.hpp"
#include "sim/function_table.hpp"

#include "legacy_heap_queue.hpp"

using namespace codecrunch;
using namespace codecrunch::sim;

// --- differential queue suite ----------------------------------------------

namespace {

/** One scripted queue operation, pre-generated so both queues replay
 * the exact same decisions. */
struct QueueOp {
    enum Kind { Schedule, Cancel, Step, RunUntil } kind = Schedule;
    double delay = 0.0;      // Schedule / RunUntil (relative to now)
    std::size_t target = 0;  // Cancel: index into scheduled handles
    bool chain = false;      // Schedule: callback schedules a follow-up
    int steps = 0;           // Step: how many
};

/**
 * Seeded op stream. Schedules dominate; delays mix integer-quantized
 * values (forced same-timestamp collisions), short continuous delays
 * and far-future ones (exercising the ladder's Top pile), so every
 * structural path of the calendar queue sees traffic.
 */
std::vector<QueueOp>
makeScript(std::uint64_t seed, std::size_t numOps)
{
    Rng rng(seed);
    std::vector<QueueOp> ops;
    ops.reserve(numOps);
    std::size_t scheduled = 0;
    for (std::size_t i = 0; i < numOps; ++i) {
        const double roll = rng.uniform();
        QueueOp op;
        if (roll < 0.55 || scheduled == 0) {
            op.kind = QueueOp::Schedule;
            const double shape = rng.uniform();
            if (shape < 0.25) // collision-prone integer timestamps
                op.delay =
                    static_cast<double>(rng.uniformInt(0, 40));
            else if (shape < 0.85) // near-now continuum
                op.delay = rng.uniform(0.0, 120.0);
            else // far future: lands in the ladder's Top pile
                op.delay = rng.uniform(1000.0, 50000.0);
            op.chain = rng.bernoulli(0.15);
            ++scheduled;
        } else if (roll < 0.70) {
            op.kind = QueueOp::Cancel;
            op.target = static_cast<std::size_t>(rng.uniformInt(
                0, static_cast<std::int64_t>(scheduled) - 1));
        } else if (roll < 0.90) {
            op.kind = QueueOp::Step;
            op.steps = static_cast<int>(rng.uniformInt(1, 8));
        } else {
            op.kind = QueueOp::RunUntil;
            op.delay = rng.uniform(0.0, 300.0);
        }
        ops.push_back(op);
    }
    return ops;
}

/** (fire time, event id) trace of one full replay, drained at the
 * end. Works for both queue implementations. */
template <typename Queue, typename Handle>
std::vector<std::pair<double, std::uint64_t>>
replayScript(const std::vector<QueueOp>& ops)
{
    Queue queue;
    std::vector<Handle> handles;
    std::vector<std::pair<double, std::uint64_t>> fired;
    std::uint64_t nextId = 0;
    constexpr std::uint64_t kChainBase = 1u << 30;
    for (const QueueOp& op : ops) {
        switch (op.kind) {
        case QueueOp::Schedule: {
            const std::uint64_t id = nextId++;
            const bool chain = op.chain;
            handles.push_back(queue.scheduleAfter(
                op.delay, [&queue, &fired, id, chain] {
                    fired.emplace_back(queue.now(), id);
                    if (chain) // schedule-from-callback path
                        queue.scheduleAfter(
                            0.5, [&queue, &fired, id] {
                                fired.emplace_back(queue.now(),
                                                   kChainBase + id);
                            });
                }));
            break;
        }
        case QueueOp::Cancel:
            handles[op.target].cancel();
            break;
        case QueueOp::Step:
            for (int s = 0; s < op.steps; ++s)
                queue.step();
            break;
        case QueueOp::RunUntil:
            queue.runUntil(queue.now() + op.delay);
            break;
        }
    }
    queue.run();
    return fired;
}

} // namespace

TEST(DifferentialQueue, MillionOpStreamMatchesLegacyHeap)
{
    // ~10^6 queue operations once fires/cancels are counted in.
    const auto script = makeScript(/*seed=*/2024, /*numOps=*/400'000);
    const auto ladder =
        replayScript<EventQueue, EventHandle>(script);
    const auto heap =
        replayScript<legacy::LegacyHeapQueue,
                     legacy::LegacyEventHandle>(script);
    ASSERT_EQ(ladder.size(), heap.size());
    for (std::size_t i = 0; i < ladder.size(); ++i) {
        ASSERT_EQ(ladder[i].second, heap[i].second)
            << "fire sequence diverges at position " << i;
        ASSERT_DOUBLE_EQ(ladder[i].first, heap[i].first)
            << "fire time diverges at position " << i;
    }
}

TEST(DifferentialQueue, MultipleSeedsMatch)
{
    for (const std::uint64_t seed : {1ull, 7ull, 99ull}) {
        const auto script = makeScript(seed, 30'000);
        const auto ladder =
            replayScript<EventQueue, EventHandle>(script);
        const auto heap =
            replayScript<legacy::LegacyHeapQueue,
                         legacy::LegacyEventHandle>(script);
        EXPECT_EQ(ladder, heap) << "seed " << seed;
    }
}

// --- ladder-specific ordering ----------------------------------------------

TEST(EventQueue, FifoWithinTimestampAcrossTopSpill)
{
    // 300 same-timestamp events land in the unsorted Top pile, spill
    // into a fresh ladder epoch and take the zero-range sort path;
    // FIFO within the timestamp must survive all of it. The 100th
    // callback schedules 50 more at the SAME (now current) timestamp,
    // which insert against an active ladder — they must fire after
    // every original, again in insertion order.
    EventQueue queue;
    std::vector<int> order;
    for (int i = 0; i < 300; ++i) {
        queue.schedule(1000.0, [&queue, &order, i] {
            order.push_back(i);
            if (i == 100) {
                for (int j = 0; j < 50; ++j)
                    queue.schedule(1000.0, [&order, j] {
                        order.push_back(300 + j);
                    });
            }
        });
    }
    queue.run();
    ASSERT_EQ(order.size(), 350u);
    for (int i = 0; i < 350; ++i)
        EXPECT_EQ(order[i], i);
}

TEST(EventQueue, FifoSurvivesEpochBoundary)
{
    // Drain the queue completely (epoch ends, ladder deactivates),
    // then run a second same-timestamp burst in the next epoch.
    EventQueue queue;
    std::vector<int> order;
    for (int i = 0; i < 100; ++i)
        queue.schedule(10.0, [&order, i] { order.push_back(i); });
    queue.run();
    for (int i = 0; i < 100; ++i)
        queue.schedule(2000.0 + (i % 2 == 0 ? 0.0 : 1.0),
                       [&order, i] { order.push_back(100 + i); });
    queue.run();
    ASSERT_EQ(order.size(), 200u);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(order[i], i);
    // Second burst: all even offsets (t=2000) in insertion order,
    // then all odd (t=2001) in insertion order.
    std::vector<int> expected;
    for (int i = 0; i < 100; i += 2)
        expected.push_back(100 + i);
    for (int i = 1; i < 100; i += 2)
        expected.push_back(100 + i);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(order[100 + i], expected[i]);
}

TEST(EventQueue, CancellationCompactionKeepsStorageBounded)
{
    // Schedule/cancel churn: stored entries (incl. lazily-cancelled)
    // must stay within ~2x the live count instead of growing without
    // bound.
    EventQueue queue;
    std::vector<EventHandle> handles;
    for (int round = 0; round < 100; ++round) {
        for (int i = 0; i < 100; ++i)
            handles.push_back(
                queue.schedule(1e6 + round * 100 + i, [] {}));
        for (int i = 0; i < 90; ++i) {
            handles.back().cancel();
            handles.pop_back();
        }
    }
    EXPECT_EQ(queue.pending(), 100u * 10u);
    EXPECT_LE(queue.storedEntries(), 2 * queue.pending() + 64);
    queue.run();
    EXPECT_TRUE(queue.empty());
    EXPECT_EQ(queue.storedEntries(), 0u);
}

TEST(EventQueue, HandlesOutliveQueue)
{
    // The pooled handle state is shared ownership: cancel() after the
    // queue is destroyed must be a safe no-op.
    EventHandle survivor;
    {
        EventQueue queue;
        survivor = queue.schedule(5.0, [] {});
    }
    EXPECT_TRUE(survivor.pending());
    survivor.cancel(); // no queue left: must not crash
}

// --- Arena ------------------------------------------------------------------

TEST(Arena, AllocationsDoNotOverlapAndHoldTheirBytes)
{
    Arena arena(1024); // small chunks: force many chunk transitions
    Rng rng(7);
    struct Block {
        unsigned char* ptr;
        std::size_t size;
        unsigned char fill;
    };
    std::vector<Block> blocks;
    for (int i = 0; i < 500; ++i) {
        const std::size_t size =
            static_cast<std::size_t>(rng.uniformInt(1, 200));
        const std::size_t align = std::size_t{1}
            << rng.uniformInt(0, 4);
        auto* ptr = static_cast<unsigned char*>(
            arena.allocate(size, align));
        ASSERT_EQ(reinterpret_cast<std::uintptr_t>(ptr) % align, 0u);
        const auto fill = static_cast<unsigned char>(i % 251);
        std::memset(ptr, fill, size);
        blocks.push_back({ptr, size, fill});
    }
    // Every block still holds its fill: any overlap would have been
    // clobbered by a later memset.
    for (const Block& block : blocks)
        for (std::size_t b = 0; b < block.size; ++b)
            ASSERT_EQ(block.ptr[b], block.fill);
}

TEST(Arena, ResetPoisonsFreedBytes)
{
    Arena arena;
    auto* bytes = arena.allocateArray<unsigned char>(256);
    std::memset(bytes, 0xAB, 256);
    arena.reset();
    // The chunk is retained for reuse, so the storage is still mapped;
    // its contents must be the poison byte, making use-after-reset
    // reads loud (and trivially detectable under sanitizers).
    for (std::size_t i = 0; i < 256; ++i)
        ASSERT_EQ(bytes[i], Arena::kPoisonByte);
    EXPECT_EQ(arena.bytesAllocated(), 0u);
}

TEST(Arena, ResetReusesChunksInsteadOfGrowing)
{
    Arena arena(4096);
    const auto fill = [&arena] {
        for (int i = 0; i < 100; ++i)
            arena.allocate(100, 8);
    };
    fill();
    const std::size_t reservedAfterFirst = arena.bytesReserved();
    for (int round = 0; round < 10; ++round) {
        arena.reset();
        fill();
    }
    EXPECT_EQ(arena.bytesReserved(), reservedAfterFirst);
}

// --- SlotPool ---------------------------------------------------------------

TEST(SlotPool, IndicesAreDenseAndRecycledLifo)
{
    SlotPool<int> pool;
    const auto a = pool.emplace(1);
    const auto b = pool.emplace(2);
    const auto c = pool.emplace(3);
    EXPECT_EQ(a, 0u);
    EXPECT_EQ(b, 1u);
    EXPECT_EQ(c, 2u);
    pool.erase(a);
    pool.erase(c);
    // LIFO: the most recently freed slot is reused first — the order
    // is deterministic, so anything keyed on slot indices reproduces
    // across runs.
    EXPECT_EQ(pool.emplace(4), c);
    EXPECT_EQ(pool.emplace(5), a);
    EXPECT_EQ(pool.emplace(6), 3u);
    EXPECT_EQ(pool.size(), 4u);
}

TEST(SlotPool, AddressesStayStableAsThePoolGrows)
{
    SlotPool<std::uint64_t> pool;
    const auto first = pool.emplace(0xfeedfacecafebeefull);
    const std::uint64_t* ptr = &pool[first];
    for (int i = 0; i < 10'000; ++i)
        pool.emplace(static_cast<std::uint64_t>(i));
    EXPECT_EQ(&pool[first], ptr);
    EXPECT_EQ(pool[first], 0xfeedfacecafebeefull);
}

TEST(SlotPool, ForEachVisitsLiveSlotsAscending)
{
    SlotPool<int> pool;
    for (int i = 0; i < 10; ++i)
        pool.emplace(i * 10);
    for (SlotPool<int>::Index i = 1; i < 10; i += 2)
        pool.erase(i);
    std::vector<SlotPool<int>::Index> visited;
    pool.forEach([&](SlotPool<int>::Index index, const int& value) {
        visited.push_back(index);
        EXPECT_EQ(value, static_cast<int>(index) * 10);
    });
    EXPECT_EQ(visited,
              (std::vector<SlotPool<int>::Index>{0, 2, 4, 6, 8}));
}

TEST(SlotPool, EraseRunsDestructorsAndClearDropsTheRest)
{
    static int destroyed = 0;
    struct Counted {
        ~Counted() { ++destroyed; }
    };
    destroyed = 0;
    SlotPool<Counted> pool;
    const auto a = pool.emplace();
    pool.emplace();
    pool.emplace();
    pool.erase(a);
    EXPECT_EQ(destroyed, 1);
    pool.clear();
    EXPECT_EQ(destroyed, 3);
    EXPECT_TRUE(pool.empty());
}

TEST(SlotPool, EraseOfEmptySlotPanics)
{
    SlotPool<int> pool;
    pool.emplace(1);
    EXPECT_DEATH(pool.erase(7), "erase of empty slot");
}

// --- FunctionStateTable vs array-of-structs oracle --------------------------

namespace {

/** The plain-struct shape the SoA table replaces. */
struct OracleState {
    Seconds lastArrival =
        -std::numeric_limits<double>::infinity();
    std::uint64_t arrivalCount = 0;
    Seconds keepAliveDeadline = 0.0;
    std::uint32_t warmCount = 0;
    std::uint32_t compressedCount = 0;
    float memoryMb = 0.0f;
    float compressedMb = 0.0f;
};

} // namespace

TEST(FunctionStateTable, MatchesAosOracleUnderRandomMutation)
{
    constexpr std::size_t kFunctions = 64;
    FunctionStateTable table(kFunctions);
    std::vector<OracleState> oracle(kFunctions);
    Rng rng(31337);
    Seconds now = 0.0;
    for (int i = 0; i < 20'000; ++i) {
        const auto fn = static_cast<FunctionId>(
            rng.uniformInt(0, kFunctions - 1));
        now += rng.uniform();
        switch (rng.uniformInt(0, 4)) {
        case 0:
            table.noteArrival(fn, now);
            oracle[fn].lastArrival = now;
            ++oracle[fn].arrivalCount;
            break;
        case 1:
            table.setKeepAliveDeadline(fn, now + 600.0);
            oracle[fn].keepAliveDeadline = now + 600.0;
            break;
        case 2:
            if (oracle[fn].warmCount > 0 && rng.bernoulli(0.5)) {
                table.noteWarm(fn, -1);
                --oracle[fn].warmCount;
            } else {
                table.noteWarm(fn, +1);
                ++oracle[fn].warmCount;
            }
            break;
        case 3:
            if (oracle[fn].compressedCount > 0 &&
                rng.bernoulli(0.5)) {
                table.noteCompressed(fn, -1);
                --oracle[fn].compressedCount;
            } else {
                table.noteCompressed(fn, +1);
                ++oracle[fn].compressedCount;
            }
            break;
        case 4: {
            const double mem = rng.uniform(64.0, 2048.0);
            table.setFootprint(fn, mem, mem / 3.0);
            oracle[fn].memoryMb = static_cast<float>(mem);
            oracle[fn].compressedMb =
                static_cast<float>(mem / 3.0);
            break;
        }
        }
    }
    for (FunctionId fn = 0; fn < kFunctions; ++fn) {
        EXPECT_EQ(table.lastArrival(fn), oracle[fn].lastArrival);
        EXPECT_EQ(table.arrivalCount(fn), oracle[fn].arrivalCount);
        EXPECT_EQ(table.keepAliveDeadline(fn),
                  oracle[fn].keepAliveDeadline);
        EXPECT_EQ(table.warmCount(fn), oracle[fn].warmCount);
        EXPECT_EQ(table.compressedCount(fn),
                  oracle[fn].compressedCount);
        EXPECT_EQ(table.memoryMb(fn), oracle[fn].memoryMb);
        EXPECT_EQ(table.compressedMb(fn), oracle[fn].compressedMb);
    }
    // Raw columns expose the same data for cache-linear scans.
    for (FunctionId fn = 0; fn < kFunctions; ++fn) {
        EXPECT_EQ(table.lastArrivals()[fn], oracle[fn].lastArrival);
        EXPECT_EQ(table.warmCounts()[fn], oracle[fn].warmCount);
    }
}

TEST(FunctionStateTable, ResetZeroesEveryColumn)
{
    FunctionStateTable table(4);
    table.noteArrival(2, 10.0);
    table.noteWarm(2, +1);
    table.reset(4);
    EXPECT_EQ(table.lastArrival(2), FunctionStateTable::kNever);
    EXPECT_EQ(table.arrivalCount(2), 0u);
    EXPECT_EQ(table.warmCount(2), 0u);
}

TEST(FunctionStateTable, OutOfRangeIdPanics)
{
    FunctionStateTable table(8);
    EXPECT_DEATH(table.noteArrival(8, 1.0),
                 "outside dense id space");
}

TEST(FunctionStateTable, ResidencyUnderflowPanics)
{
    FunctionStateTable table(8);
    EXPECT_DEATH(table.noteWarm(3, -1), "residency underflow");
}
