/**
 * @file
 * Unit tests for the discrete-event queue: ordering, FIFO tie-breaks,
 * cancellation semantics, bounded runs, and failure modes.
 */
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "sim/event_queue.hpp"

using namespace codecrunch;
using namespace codecrunch::sim;

TEST(EventQueue, FiresInTimeOrder)
{
    EventQueue queue;
    std::vector<int> order;
    queue.schedule(3.0, [&] { order.push_back(3); });
    queue.schedule(1.0, [&] { order.push_back(1); });
    queue.schedule(2.0, [&] { order.push_back(2); });
    queue.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, SameTimeIsFifo)
{
    EventQueue queue;
    std::vector<int> order;
    for (int i = 0; i < 10; ++i)
        queue.schedule(5.0, [&, i] { order.push_back(i); });
    queue.run();
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(order[i], i);
}

TEST(EventQueue, NowAdvancesWithEvents)
{
    EventQueue queue;
    Seconds seen = -1.0;
    queue.schedule(7.5, [&] { seen = queue.now(); });
    queue.run();
    EXPECT_DOUBLE_EQ(seen, 7.5);
    EXPECT_DOUBLE_EQ(queue.now(), 7.5);
}

TEST(EventQueue, ScheduleAfterIsRelative)
{
    EventQueue queue;
    Seconds seen = -1.0;
    queue.schedule(10.0, [&] {
        queue.scheduleAfter(5.0, [&] { seen = queue.now(); });
    });
    queue.run();
    EXPECT_DOUBLE_EQ(seen, 15.0);
}

TEST(EventQueue, CancelPreventsFiring)
{
    EventQueue queue;
    bool fired = false;
    EventHandle handle =
        queue.schedule(1.0, [&] { fired = true; });
    handle.cancel();
    queue.run();
    EXPECT_FALSE(fired);
    EXPECT_TRUE(handle.cancelled());
    EXPECT_FALSE(handle.fired());
}

TEST(EventQueue, CancelIsIdempotent)
{
    EventQueue queue;
    EventHandle handle = queue.schedule(1.0, [] {});
    handle.cancel();
    handle.cancel();
    EXPECT_TRUE(queue.empty());
    queue.run();
}

TEST(EventQueue, CancelAfterFireIsNoop)
{
    EventQueue queue;
    EventHandle handle = queue.schedule(1.0, [] {});
    queue.run();
    EXPECT_TRUE(handle.fired());
    handle.cancel();
    EXPECT_TRUE(handle.fired());
    EXPECT_FALSE(handle.cancelled());
}

TEST(EventQueue, PendingCountsLiveEventsOnly)
{
    EventQueue queue;
    EventHandle a = queue.schedule(1.0, [] {});
    queue.schedule(2.0, [] {});
    EXPECT_EQ(queue.pending(), 2u);
    a.cancel();
    EXPECT_EQ(queue.pending(), 1u);
    queue.run();
    EXPECT_EQ(queue.pending(), 0u);
    EXPECT_TRUE(queue.empty());
}

TEST(EventQueue, RunUntilStopsAtLimit)
{
    EventQueue queue;
    std::vector<int> order;
    queue.schedule(1.0, [&] { order.push_back(1); });
    queue.schedule(2.0, [&] { order.push_back(2); });
    queue.schedule(3.0, [&] { order.push_back(3); });
    queue.runUntil(2.0);
    EXPECT_EQ(order, (std::vector<int>{1, 2})); // events at limit fire
    EXPECT_DOUBLE_EQ(queue.now(), 2.0);
    EXPECT_EQ(queue.pending(), 1u);
    queue.run();
    EXPECT_EQ(order.size(), 3u);
}

TEST(EventQueue, RunUntilAdvancesClockWhenIdle)
{
    EventQueue queue;
    queue.runUntil(42.0);
    EXPECT_DOUBLE_EQ(queue.now(), 42.0);
}

TEST(EventQueue, RunUntilSkipsCancelledHead)
{
    EventQueue queue;
    bool fired = false;
    EventHandle head = queue.schedule(1.0, [&] { fired = true; });
    bool tail = false;
    queue.schedule(1.5, [&] { tail = true; });
    head.cancel();
    queue.runUntil(2.0);
    EXPECT_FALSE(fired);
    EXPECT_TRUE(tail);
}

TEST(EventQueue, EventsCanScheduleMoreEvents)
{
    EventQueue queue;
    int count = 0;
    std::function<void()> chain = [&] {
        if (++count < 5)
            queue.scheduleAfter(1.0, chain);
    };
    queue.schedule(0.0, chain);
    queue.run();
    EXPECT_EQ(count, 5);
    EXPECT_DOUBLE_EQ(queue.now(), 4.0);
}

TEST(EventQueue, SchedulingIntoThePastPanics)
{
    EventQueue queue;
    queue.schedule(10.0, [] {});
    queue.run();
    EXPECT_DEATH(queue.schedule(5.0, [] {}), "past");
}

TEST(EventQueue, HandleDefaultIsInvalid)
{
    EventHandle handle;
    EXPECT_FALSE(handle.valid());
    EXPECT_FALSE(handle.pending());
    handle.cancel(); // must not crash
}

TEST(EventQueue, CancellingOneOfManyAtSameTime)
{
    EventQueue queue;
    std::vector<int> order;
    queue.schedule(1.0, [&] { order.push_back(0); });
    EventHandle mid = queue.schedule(1.0, [&] { order.push_back(1); });
    queue.schedule(1.0, [&] { order.push_back(2); });
    mid.cancel();
    queue.run();
    EXPECT_EQ(order, (std::vector<int>{0, 2}));
}

TEST(EventQueue, StressManyEventsStayOrdered)
{
    EventQueue queue;
    Rng rng(99);
    std::vector<double> fireTimes;
    for (int i = 0; i < 5000; ++i) {
        const double when = rng.uniform(0.0, 1000.0);
        queue.schedule(when, [&, when] { fireTimes.push_back(when); });
    }
    queue.run();
    ASSERT_EQ(fireTimes.size(), 5000u);
    EXPECT_TRUE(std::is_sorted(fireTimes.begin(), fireTimes.end()));
}

TEST(EventQueue, HeapStaysBoundedUnderCancelChurn)
{
    // Keep-alive retargeting pattern: schedule an expiry, cancel it,
    // reschedule — tens of thousands of times with only a handful of
    // live events. Without compaction the heap would hold every
    // cancelled entry until its timestamp is reached.
    EventQueue queue;
    std::vector<EventHandle> handles(8);
    int fired = 0;
    for (int round = 0; round < 10000; ++round) {
        const std::size_t slot =
            static_cast<std::size_t>(round) % handles.size();
        handles[slot].cancel();
        handles[slot] = queue.scheduleAfter(
            1e6 + static_cast<double>(round), [&] { ++fired; });
        ASSERT_LT(queue.storedEntries(), 1000u) << "round " << round;
    }
    EXPECT_LE(queue.pending(), handles.size());
    // Compaction must not disturb what actually fires.
    queue.run();
    EXPECT_EQ(fired, static_cast<int>(handles.size()));
}

TEST(EventQueue, CompactionPreservesFireOrder)
{
    EventQueue queue;
    std::vector<int> order;
    std::vector<EventHandle> doomed;
    for (int i = 0; i < 200; ++i)
        queue.schedule(static_cast<double>(i),
                       [&order, i] { order.push_back(i); });
    for (int i = 0; i < 600; ++i)
        doomed.push_back(queue.schedule(
            1000.0, [&order] { order.push_back(-1); }));
    for (auto& handle : doomed)
        handle.cancel(); // triggers at least one compaction
    EXPECT_LT(queue.storedEntries(), 600u);
    queue.run();
    ASSERT_EQ(order.size(), 200u);
    EXPECT_TRUE(std::is_sorted(order.begin(), order.end()));
}
