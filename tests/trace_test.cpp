/**
 * @file
 * Trace module tests: the function catalog's population statistics
 * (the paper's Figs. 1(c) and 2), the Azure-to-benchmark mapping, the
 * workload generator's distributions and determinism, the compression
 * model, and the Azure-format CSV round trip.
 */
#include <gtest/gtest.h>

#include <cstdio>
#include <set>

#include <fstream>

#include "common/csv.hpp"
#include "obs/trace.hpp"
#include "trace/azure_csv.hpp"
#include "trace/azure_dataset.hpp"
#include "trace/compression_model.hpp"
#include "trace/function_catalog.hpp"
#include "trace/generator.hpp"

using namespace codecrunch;
using namespace codecrunch::trace;

// --- catalog ---------------------------------------------------------------

TEST(FunctionCatalog, HasTwoDozenArchetypes)
{
    EXPECT_EQ(FunctionCatalog::entries().size(), 24u);
}

TEST(FunctionCatalog, ArmFasterFractionMatchesPaper)
{
    // Fig. 2: ~38% of functions run faster on ARM.
    int armFaster = 0;
    for (const auto& e : FunctionCatalog::entries())
        armFaster += e.armRatio < 1.0;
    const double fraction =
        double(armFaster) / FunctionCatalog::entries().size();
    EXPECT_NEAR(fraction, 0.38, 0.08);
}

TEST(FunctionCatalog, CompressionFavorabilityMatchesPaper)
{
    // Fig. 1(c) / Sec. 2: favorable for ~42% on x86, slightly more on
    // ARM, with x86-favorable a subset of ARM-favorable in spirit.
    const auto model = CompressionModel::lz4();
    int favX86 = 0, favArm = 0, x86NotArm = 0;
    for (const auto& e : FunctionCatalog::entries()) {
        FunctionProfile p;
        p.coldStart[0] = e.coldStartX86;
        p.coldStart[1] = e.coldStartArm;
        model.apply(e, p);
        const bool fx = p.compressionFavorable(NodeType::X86);
        const bool fa = p.compressionFavorable(NodeType::ARM);
        favX86 += fx;
        favArm += fa;
        x86NotArm += fx && !fa;
    }
    const double n = FunctionCatalog::entries().size();
    EXPECT_NEAR(favX86 / n, 0.42, 0.10);
    EXPECT_GE(favArm, favX86 - 1);
    EXPECT_LE(x86NotArm, 2);
}

TEST(FunctionCatalog, UnfavorableWorstCaseNearPaperBound)
{
    // Unfavorable functions pay at most ~1.75x the cold start for a
    // compressed start (paper: "up to 75% higher").
    const auto model = CompressionModel::lz4();
    double worst = 0.0;
    for (const auto& e : FunctionCatalog::entries()) {
        FunctionProfile p;
        p.coldStart[0] = e.coldStartX86;
        p.coldStart[1] = e.coldStartArm;
        model.apply(e, p);
        worst = std::max(worst, p.decompress[0] / p.coldStart[0]);
    }
    EXPECT_GT(worst, 1.2);
    EXPECT_LT(worst, 2.0);
}

TEST(FunctionCatalog, ColdStartFractionOfExecIsPlausible)
{
    // Intro: cold start is 40-75% of execution time (population mean).
    double execSum = 0, coldSum = 0;
    for (const auto& e : FunctionCatalog::entries()) {
        execSum += e.execX86;
        coldSum += e.coldStartX86;
    }
    const double fraction = coldSum / execSum;
    EXPECT_GT(fraction, 0.40);
    EXPECT_LT(fraction, 1.0);
}

TEST(FunctionCatalog, NearestMappingPicksClosestArchetype)
{
    const auto& entries = FunctionCatalog::entries();
    for (std::size_t i = 0; i < entries.size(); ++i) {
        // Each archetype must map to itself.
        EXPECT_EQ(FunctionCatalog::nearest(entries[i].execX86,
                                           entries[i].memoryMb),
                  i);
    }
}

TEST(FunctionCatalog, NearestHandlesExtremes)
{
    const auto& entries = FunctionCatalog::entries();
    const std::size_t tiny = FunctionCatalog::nearest(0.001, 1.0);
    const std::size_t huge = FunctionCatalog::nearest(1e5, 1e6);
    EXPECT_LT(tiny, entries.size());
    EXPECT_LT(huge, entries.size());
    EXPECT_NE(tiny, huge);
}

// --- compression model --------------------------------------------------------

TEST(CompressionModel, RatioMonotoneInCompressibility)
{
    const auto model = CompressionModel::lz4();
    EXPECT_LT(model.ratioFor(0.2), model.ratioFor(0.8));
    EXPECT_GT(model.ratioFor(0.2), 1.0);
}

TEST(CompressionModel, RatioIsCached)
{
    const auto model = CompressionModel::lz4();
    EXPECT_DOUBLE_EQ(model.ratioFor(0.5), model.ratioFor(0.5));
}

TEST(CompressionModel, AppliesConsistentFields)
{
    const auto model = CompressionModel::lz4();
    const auto& entry = FunctionCatalog::entries()[0];
    FunctionProfile profile;
    model.apply(entry, profile);
    EXPECT_NEAR(profile.compressedMb * profile.compressRatio,
                entry.imageMb, 1e-6);
    EXPECT_GT(profile.decompress[0], entry.registerSeconds);
    EXPECT_GT(profile.decompress[1], profile.decompress[0] - 1e-9);
    EXPECT_GT(profile.compressTime[0], 0.0);
}

TEST(CompressionModel, NoneModelIsTransparent)
{
    const auto model = CompressionModel::none();
    const auto& entry = FunctionCatalog::entries()[0];
    FunctionProfile profile;
    model.apply(entry, profile);
    EXPECT_NEAR(profile.compressRatio, 1.0, 1e-9);
    EXPECT_NEAR(profile.compressedMb, entry.imageMb, 1e-6);
}

TEST(CompressionModel, RangeLzHasHigherRatioSlowerDecompress)
{
    const auto lz4 = CompressionModel::lz4();
    const auto range = CompressionModel::rangeLz();
    EXPECT_GT(range.ratioFor(0.6), lz4.ratioFor(0.6));
    const auto& entry = FunctionCatalog::entries()[2];
    FunctionProfile a, b;
    lz4.apply(entry, a);
    range.apply(entry, b);
    EXPECT_GT(b.decompress[0], a.decompress[0]);
}

// --- generator ------------------------------------------------------------------

namespace {

TraceConfig
smallConfig()
{
    TraceConfig config;
    config.numFunctions = 120;
    config.days = 0.2;
    config.targetMeanRatePerSecond = 1.0;
    config.seed = 11;
    return config;
}

} // namespace

TEST(TraceGenerator, DeterministicPerSeed)
{
    const auto a = TraceGenerator::generate(smallConfig());
    const auto b = TraceGenerator::generate(smallConfig());
    ASSERT_EQ(a.invocations.size(), b.invocations.size());
    for (std::size_t i = 0; i < a.invocations.size(); ++i) {
        EXPECT_EQ(a.invocations[i].function, b.invocations[i].function);
        EXPECT_DOUBLE_EQ(a.invocations[i].arrival,
                         b.invocations[i].arrival);
    }
}

TEST(TraceGenerator, DifferentSeedsDiffer)
{
    auto config = smallConfig();
    const auto a = TraceGenerator::generate(config);
    config.seed = 12;
    const auto b = TraceGenerator::generate(config);
    EXPECT_NE(a.invocations.size(), b.invocations.size());
}

TEST(TraceGenerator, InvocationsSortedAndInRange)
{
    const auto workload = TraceGenerator::generate(smallConfig());
    Seconds last = -1.0;
    for (const auto& inv : workload.invocations) {
        EXPECT_GE(inv.arrival, last);
        EXPECT_GE(inv.arrival, 0.0);
        EXPECT_LT(inv.arrival, workload.duration);
        EXPECT_LT(inv.function, workload.functions.size());
        last = inv.arrival;
    }
}

TEST(TraceGenerator, MeanRateNearTarget)
{
    auto config = smallConfig();
    config.numFunctions = 400;
    config.targetMeanRatePerSecond = 2.0;
    config.days = 0.3;
    const auto workload = TraceGenerator::generate(config);
    const double rate =
        workload.invocations.size() / workload.duration;
    EXPECT_NEAR(rate, 2.0, 1.0);
}

TEST(TraceGenerator, PopularityIsHeavyTailed)
{
    auto config = smallConfig();
    config.numFunctions = 300;
    config.days = 0.3;
    config.targetMeanRatePerSecond = 3.0;
    const auto workload = TraceGenerator::generate(config);
    std::vector<std::size_t> counts(workload.functions.size(), 0);
    for (const auto& inv : workload.invocations)
        ++counts[inv.function];
    std::sort(counts.rbegin(), counts.rend());
    std::size_t top10 = 0, total = 0;
    for (std::size_t i = 0; i < counts.size(); ++i) {
        total += counts[i];
        if (i < 30)
            top10 += counts[i]; // top 10% of functions
    }
    EXPECT_GT(static_cast<double>(top10) / total, 0.35);
}

TEST(TraceGenerator, ProfilesAreCatalogBacked)
{
    const auto workload = TraceGenerator::generate(smallConfig());
    const auto& catalog = FunctionCatalog::entries();
    for (const auto& f : workload.functions) {
        ASSERT_LT(f.catalogIndex, catalog.size());
        const auto& entry = catalog[f.catalogIndex];
        EXPECT_DOUBLE_EQ(f.memoryMb, entry.memoryMb);
        EXPECT_NEAR(f.exec[0], entry.execX86, entry.execX86 * 0.11);
        EXPECT_NEAR(f.exec[1] / f.exec[0], entry.armRatio, 1e-9);
        EXPECT_GT(f.compressRatio, 1.0);
    }
}

TEST(TraceGenerator, InputChangeScalesLaterInvocations)
{
    auto config = smallConfig();
    config.inputChangeTime = config.days * 24 * 3600.0 * 0.5;
    config.inputChangeFraction = 1.0;
    config.inputChangeScale = 2.0;
    const auto workload = TraceGenerator::generate(config);
    bool sawScaled = false;
    for (const auto& inv : workload.invocations) {
        if (inv.arrival < config.inputChangeTime) {
            EXPECT_DOUBLE_EQ(inv.inputScale, 1.0);
        } else {
            EXPECT_DOUBLE_EQ(inv.inputScale, 2.0);
            sawScaled = true;
        }
    }
    EXPECT_TRUE(sawScaled);
}

TEST(TraceGenerator, PeakWindowsRaiseLoad)
{
    auto config = smallConfig();
    config.numFunctions = 300;
    config.days = 0.25;
    config.targetMeanRatePerSecond = 2.0;
    config.diurnalAmplitude = 0.0;
    config.peaks = {{2.0, 1.0, 5.0}}; // hour 2-3, x5
    const auto workload = TraceGenerator::generate(config);
    std::size_t inPeak = 0, offPeak = 0;
    for (const auto& inv : workload.invocations) {
        const double hour = inv.arrival / 3600.0;
        if (hour >= 2.0 && hour < 3.0)
            ++inPeak;
        else if (hour >= 4.0 && hour < 5.0)
            ++offPeak;
    }
    EXPECT_GT(inPeak, offPeak * 2);
}

TEST(TraceGenerator, TraceSamplingIsPerFunctionOverRealWorkloads)
{
    // --trace-sample keeps whole per-function invocation groups, so
    // over a generated workload every invocation's keep decision must
    // agree with its function's, the kept *function* fraction tracks
    // 1/N, and — because popularity is heavy-tailed — the kept
    // *invocation* fraction may legitimately deviate from 1/N.
    const auto workload = TraceGenerator::generate(smallConfig());
    const std::uint64_t seed = 9;
    const std::uint32_t every = 4;

    std::set<std::size_t> keptFunctions;
    std::size_t keptInvocations = 0;
    for (const auto& inv : workload.invocations) {
        const bool keep =
            obs::traceSampleKeeps(seed, inv.function, every);
        EXPECT_EQ(keep,
                  obs::traceSampleKeeps(seed, inv.function, every));
        if (keep) {
            keptFunctions.insert(inv.function);
            ++keptInvocations;
        }
    }
    const double functionFraction =
        static_cast<double>(keptFunctions.size()) /
        workload.functions.size();
    EXPECT_NEAR(functionFraction, 1.0 / every, 0.15);
    EXPECT_GT(keptInvocations, 0u);
    EXPECT_LT(keptInvocations, workload.invocations.size());
}

TEST(TraceGenerator, MakeFunctionsOnlyBuildsProfiles)
{
    const auto functions = TraceGenerator::makeFunctions(
        smallConfig(), CompressionModel::lz4());
    EXPECT_EQ(functions.size(), smallConfig().numFunctions);
    for (std::size_t i = 0; i < functions.size(); ++i)
        EXPECT_EQ(functions[i].id, i);
}

// --- CSV round trip ---------------------------------------------------------------

TEST(AzureCsv, RoundTripPreservesWorkloadShape)
{
    const auto workload = TraceGenerator::generate(smallConfig());
    const std::string counts = "/tmp/cc_test_counts.csv";
    const std::string profiles = "/tmp/cc_test_profiles.csv";
    AzureCsv::writeInvocationCounts(workload, counts);
    AzureCsv::writeProfiles(workload, profiles);
    const auto reloaded = AzureCsv::read(counts, profiles);

    ASSERT_EQ(reloaded.functions.size(), workload.functions.size());
    EXPECT_EQ(reloaded.invocations.size(), workload.invocations.size());
    for (std::size_t i = 0; i < workload.functions.size(); ++i) {
        const auto& a = workload.functions[i];
        const auto& b = reloaded.functions[i];
        EXPECT_EQ(a.name, b.name);
        EXPECT_NEAR(a.memoryMb, b.memoryMb, 1e-6);
        EXPECT_NEAR(a.exec[0], b.exec[0], 1e-6);
        EXPECT_NEAR(a.exec[1], b.exec[1], 1e-6);
        EXPECT_NEAR(a.decompress[0], b.decompress[0], 1e-6);
        EXPECT_NEAR(a.compressRatio, b.compressRatio, 1e-6);
    }

    // Per-minute counts must match exactly (arrival sub-minute
    // placement is re-randomized by design).
    const std::size_t minutes =
        static_cast<std::size_t>(workload.duration / 60.0);
    std::vector<std::size_t> before(minutes + 1, 0),
        after(minutes + 1, 0);
    for (const auto& inv : workload.invocations)
        ++before[static_cast<std::size_t>(inv.arrival / 60.0)];
    for (const auto& inv : reloaded.invocations)
        ++after[static_cast<std::size_t>(inv.arrival / 60.0)];
    EXPECT_EQ(before, after);

    std::remove(counts.c_str());
    std::remove(profiles.c_str());
}

TEST(AzureCsv, ReadIsDeterministicPerSeed)
{
    const auto workload = TraceGenerator::generate(smallConfig());
    const std::string counts = "/tmp/cc_test_counts2.csv";
    const std::string profiles = "/tmp/cc_test_profiles2.csv";
    AzureCsv::writeInvocationCounts(workload, counts);
    AzureCsv::writeProfiles(workload, profiles);
    const auto a = AzureCsv::read(counts, profiles, 5);
    const auto b = AzureCsv::read(counts, profiles, 5);
    ASSERT_EQ(a.invocations.size(), b.invocations.size());
    for (std::size_t i = 0; i < a.invocations.size(); ++i)
        EXPECT_DOUBLE_EQ(a.invocations[i].arrival,
                         b.invocations[i].arrival);
    std::remove(counts.c_str());
    std::remove(profiles.c_str());
}

TEST(AzureCsv, MalformedProfileFieldNamesFileLineAndColumn)
{
    const auto workload = TraceGenerator::generate(smallConfig());
    const std::string counts = "/tmp/cc_test_counts3.csv";
    const std::string profiles = "/tmp/cc_test_profiles3.csv";
    AzureCsv::writeInvocationCounts(workload, counts);
    AzureCsv::writeProfiles(workload, profiles);
    // Corrupt one numeric field on the first data line (line 2).
    {
        const auto lines = CsvReader::readFileNumbered(profiles);
        CsvWriter out(profiles);
        for (const auto& line : lines) {
            CsvRow row = line.fields;
            if (line.number == 2)
                row[3] = "12abc";
            out.writeRow(row);
        }
    }
    EXPECT_DEATH(AzureCsv::read(counts, profiles),
                 "cc_test_profiles3.csv:2: column 4");
    std::remove(counts.c_str());
    std::remove(profiles.c_str());
}

TEST(AzureCsv, TruncatedProfileRowNamesFileAndLine)
{
    const auto workload = TraceGenerator::generate(smallConfig());
    const std::string counts = "/tmp/cc_test_counts4.csv";
    const std::string profiles = "/tmp/cc_test_profiles4.csv";
    AzureCsv::writeInvocationCounts(workload, counts);
    AzureCsv::writeProfiles(workload, profiles);
    {
        const auto lines = CsvReader::readFileNumbered(profiles);
        CsvWriter out(profiles);
        for (const auto& line : lines) {
            CsvRow row = line.fields;
            if (line.number == 3)
                row.resize(5); // truncate mid-row
            out.writeRow(row);
        }
    }
    EXPECT_DEATH(AzureCsv::read(counts, profiles),
                 "cc_test_profiles4.csv:3: expected 16 fields, got 5");
    std::remove(counts.c_str());
    std::remove(profiles.c_str());
}

TEST(AzureCsv, RaggedCountsRowNamesFileAndLine)
{
    const auto workload = TraceGenerator::generate(smallConfig());
    const std::string counts = "/tmp/cc_test_counts5.csv";
    const std::string profiles = "/tmp/cc_test_profiles5.csv";
    AzureCsv::writeInvocationCounts(workload, counts);
    AzureCsv::writeProfiles(workload, profiles);
    {
        const auto lines = CsvReader::readFileNumbered(counts);
        CsvWriter out(counts);
        for (const auto& line : lines) {
            CsvRow row = line.fields;
            if (line.number == 2)
                row.pop_back();
            out.writeRow(row);
        }
    }
    EXPECT_DEATH(AzureCsv::read(counts, profiles),
                 "cc_test_counts5.csv:2: ragged row");
    std::remove(counts.c_str());
    std::remove(profiles.c_str());
}

// --- loader fuzz hardening --------------------------------------------------
// Malformed-input variants the scale work made cheap to hit: every one
// must die with a file:line:column message, never a silent mis-parse.

namespace {

/** Rewrite one CSV in place through a row-editing callback. */
template <typename Fn>
void
rewriteCsv(const std::string& path, Fn&& edit)
{
    const auto lines = CsvReader::readFileNumbered(path);
    CsvWriter out(path);
    for (const auto& line : lines) {
        CsvRow row = line.fields;
        edit(line.number, row);
        out.writeRow(row);
    }
}

} // namespace

TEST(AzureCsv, DuplicateFunctionIdNamesFileLineAndColumn)
{
    const auto workload = TraceGenerator::generate(smallConfig());
    const std::string counts = "/tmp/cc_test_counts6.csv";
    const std::string profiles = "/tmp/cc_test_profiles6.csv";
    AzureCsv::writeInvocationCounts(workload, counts);
    AzureCsv::writeProfiles(workload, profiles);
    // Point line 3's id at line 2's function: same id twice.
    rewriteCsv(counts, [](std::size_t number, CsvRow& row) {
        if (number == 3)
            row[0] = "0";
    });
    EXPECT_DEATH(AzureCsv::read(counts, profiles),
                 "cc_test_counts6.csv:3: column 1: duplicate "
                 "function id 0");
    std::remove(counts.c_str());
    std::remove(profiles.c_str());
}

TEST(AzureCsv, OutOfOrderMinuteColumnsRejected)
{
    const auto workload = TraceGenerator::generate(smallConfig());
    const std::string counts = "/tmp/cc_test_counts7.csv";
    const std::string profiles = "/tmp/cc_test_profiles7.csv";
    AzureCsv::writeInvocationCounts(workload, counts);
    AzureCsv::writeProfiles(workload, profiles);
    // Swap the first two minute columns in the header: positional
    // reads would silently shift every arrival by a minute.
    rewriteCsv(counts, [](std::size_t number, CsvRow& row) {
        if (number == 1)
            std::swap(row[2], row[3]);
    });
    EXPECT_DEATH(AzureCsv::read(counts, profiles),
                 "cc_test_counts7.csv:1: column 3: out-of-order "
                 "minute column 'm1', expected 'm0'");
    std::remove(counts.c_str());
    std::remove(profiles.c_str());
}

TEST(AzureCsv, FunctionIdOverflowing32BitsRejected)
{
    const auto workload = TraceGenerator::generate(smallConfig());
    const std::string counts = "/tmp/cc_test_counts8.csv";
    const std::string profiles = "/tmp/cc_test_profiles8.csv";
    AzureCsv::writeInvocationCounts(workload, counts);
    AzureCsv::writeProfiles(workload, profiles);
    rewriteCsv(profiles, [](std::size_t number, CsvRow& row) {
        if (number == 2)
            row[0] = "4294967295"; // == kInvalidFunction sentinel
    });
    EXPECT_DEATH(AzureCsv::read(counts, profiles),
                 "cc_test_profiles8.csv:2: column 1: function id "
                 "4294967295 overflows 32-bit FunctionId");
    std::remove(counts.c_str());
    std::remove(profiles.c_str());
}

TEST(AzureCsv, AbsurdInvocationCountRejected)
{
    const auto workload = TraceGenerator::generate(smallConfig());
    const std::string counts = "/tmp/cc_test_counts9.csv";
    const std::string profiles = "/tmp/cc_test_profiles9.csv";
    AzureCsv::writeInvocationCounts(workload, counts);
    AzureCsv::writeProfiles(workload, profiles);
    // A 2^32-scale count cell would try to materialize billions of
    // invocation records before anything else could object.
    rewriteCsv(counts, [](std::size_t number, CsvRow& row) {
        if (number == 2)
            row[2] = "4294967296";
    });
    EXPECT_DEATH(AzureCsv::read(counts, profiles),
                 "cc_test_counts9.csv:2: column 3: invocation count "
                 "4294967296 exceeds per-minute sanity cap");
    std::remove(counts.c_str());
    std::remove(profiles.c_str());
}

TEST(AzureCsv, NaNNumericFieldRejected)
{
    const auto workload = TraceGenerator::generate(smallConfig());
    const std::string counts = "/tmp/cc_test_counts10.csv";
    const std::string profiles = "/tmp/cc_test_profiles10.csv";
    AzureCsv::writeInvocationCounts(workload, counts);
    AzureCsv::writeProfiles(workload, profiles);
    // strtod() happily parses "nan"; the reader must still reject it
    // (non-finite rates poison every downstream mean).
    rewriteCsv(profiles, [](std::size_t number, CsvRow& row) {
        if (number == 2)
            row[7] = "nan";
    });
    EXPECT_DEATH(AzureCsv::read(counts, profiles),
                 "cc_test_profiles10.csv:2: column 8: expected "
                 "number, got 'nan'");
    std::remove(counts.c_str());
    std::remove(profiles.c_str());
}

// --- Azure public dataset loader -----------------------------------------------

namespace {

struct AzureFixtureFiles {
    std::string invocations = "/tmp/cc_azure_test_inv.csv";
    std::string durations = "/tmp/cc_azure_test_dur.csv";
    std::string memory = "/tmp/cc_azure_test_mem.csv";

    AzureFixtureFiles()
    {
        // Three functions over four minutes in the real dataset
        // schema (extra columns included to prove they are ignored).
        std::ofstream inv(invocations);
        inv << "HashOwner,HashApp,HashFunction,Trigger,1,2,3,4\n"
            << "o1,a1,f1,http,2,0,1,0\n"
            << "o1,a1,f2,timer,0,1,0,1\n"
            << "o2,a2,f3,queue,5,5,5,5\n";
        std::ofstream dur(durations);
        dur << "HashOwner,HashApp,HashFunction,Average,Count,Minimum,"
               "Maximum,percentile_Average_50\n"
            << "o1,a1,f1,250,10,100,500,240\n"
            << "o1,a1,f2,30000,4,10000,60000,29000\n";
        // f3 intentionally missing: defaults must apply.
        std::ofstream mem(memory);
        mem << "HashOwner,HashApp,SampleCount,AverageAllocatedMb\n"
            << "o1,a1,16,300\n";
    }

    ~AzureFixtureFiles()
    {
        std::remove(invocations.c_str());
        std::remove(durations.c_str());
        std::remove(memory.c_str());
    }
};

} // namespace

TEST(AzureDataset, LoadsRealSchemaFiles)
{
    AzureFixtureFiles files;
    AzureDataset::Options options;
    const auto workload = AzureDataset::load(
        files.invocations, files.durations, files.memory, options);

    ASSERT_EQ(workload.functions.size(), 3u);
    EXPECT_EQ(workload.invocations.size(), 3u + 2u + 20u);
    EXPECT_DOUBLE_EQ(workload.duration, 4 * 60.0);

    // Functions are ordered by invocation volume: f3 (20) first.
    EXPECT_NE(workload.functions[0].name.find("f3"),
              std::string::npos);

    // Durations map through: f1 averages 250 ms.
    for (const auto& f : workload.functions) {
        if (f.name.find("f1") != std::string::npos) {
            EXPECT_NEAR(f.exec[0], 0.25, 1e-9);
        }
        if (f.name.find("f2") != std::string::npos) {
            EXPECT_NEAR(f.exec[0], 30.0, 1e-9);
        }
    }
}

TEST(AzureDataset, ArrivalsStayInsideTheirMinute)
{
    AzureFixtureFiles files;
    AzureDataset::Options options;
    const auto workload = AzureDataset::load(
        files.invocations, files.durations, files.memory, options);
    // f3 fires 5x in every minute: check counts per minute bucket.
    std::vector<int> perMinute(4, 0);
    for (const auto& inv : workload.invocations) {
        ASSERT_LT(inv.arrival, workload.duration);
        if (workload.functions[inv.function].name.find("f3") !=
            std::string::npos) {
            ++perMinute[static_cast<int>(inv.arrival / 60.0)];
        }
    }
    for (int m = 0; m < 4; ++m)
        EXPECT_EQ(perMinute[m], 5);
}

TEST(AzureDataset, MaxFunctionsKeepsHottest)
{
    AzureFixtureFiles files;
    AzureDataset::Options options;
    options.maxFunctions = 1;
    const auto workload = AzureDataset::load(
        files.invocations, files.durations, files.memory, options);
    ASSERT_EQ(workload.functions.size(), 1u);
    EXPECT_NE(workload.functions[0].name.find("f3"),
              std::string::npos);
    EXPECT_EQ(workload.invocations.size(), 20u);
}

TEST(AzureDataset, MissingMemoryFileUsesDefaults)
{
    AzureFixtureFiles files;
    AzureDataset::Options options;
    const auto workload = AzureDataset::load(
        files.invocations, files.durations, "", options);
    EXPECT_EQ(workload.functions.size(), 3u);
    for (const auto& f : workload.functions)
        EXPECT_GT(f.compressRatio, 1.0);
}

TEST(AzureDataset, MalformedDurationNamesFileAndLine)
{
    AzureFixtureFiles files;
    {
        std::ofstream dur(files.durations);
        dur << "HashOwner,HashApp,HashFunction,Average,Count\n"
            << "o1,a1,f1,250,10\n"
            << "o1,a1,f2,not-a-number,4\n";
    }
    AzureDataset::Options options;
    EXPECT_DEATH(AzureDataset::load(files.invocations,
                                    files.durations, files.memory,
                                    options),
                 "cc_azure_test_dur.csv:3: column 4");
}

TEST(AzureDataset, TruncatedInvocationRowNamesFileAndLine)
{
    AzureFixtureFiles files;
    {
        std::ofstream inv(files.invocations);
        inv << "HashOwner,HashApp,HashFunction,Trigger,1,2,3,4\n"
            << "o1,a1,f1,http,2,0,1,0\n"
            << "o1,a1,f2,timer,0,1\n"; // two minute cells missing
    }
    AzureDataset::Options options;
    EXPECT_DEATH(AzureDataset::load(files.invocations,
                                    files.durations, files.memory,
                                    options),
                 "cc_azure_test_inv.csv:3: expected 8 fields, got 6");
}

TEST(AzureDataset, OutOfOrderMinuteColumnsRejected)
{
    AzureFixtureFiles files;
    {
        std::ofstream inv(files.invocations);
        inv << "HashOwner,HashApp,HashFunction,Trigger,1,2,4,3\n"
            << "o1,a1,f1,http,2,0,1,0\n";
    }
    AzureDataset::Options options;
    EXPECT_DEATH(AzureDataset::load(files.invocations,
                                    files.durations, files.memory,
                                    options),
                 "cc_azure_test_inv.csv:1: column 7: out-of-order "
                 "minute column '4', expected '3'");
}

TEST(AzureDataset, DuplicateFunctionRowRejected)
{
    AzureFixtureFiles files;
    {
        std::ofstream inv(files.invocations);
        inv << "HashOwner,HashApp,HashFunction,Trigger,1,2,3,4\n"
            << "o1,a1,f1,http,2,0,1,0\n"
            << "o2,a2,f3,queue,5,5,5,5\n"
            << "o1,a1,f1,timer,0,1,0,1\n"; // same owner/app/function
    }
    AzureDataset::Options options;
    EXPECT_DEATH(AzureDataset::load(files.invocations,
                                    files.durations, files.memory,
                                    options),
                 "cc_azure_test_inv.csv:4: column 3: duplicate "
                 "function id 'f1' \\(first seen at line 2\\)");
}

TEST(AzureDataset, NaNDurationRejected)
{
    AzureFixtureFiles files;
    {
        std::ofstream dur(files.durations);
        dur << "HashOwner,HashApp,HashFunction,Average,Count\n"
            << "o1,a1,f1,nan,10\n";
    }
    AzureDataset::Options options;
    EXPECT_DEATH(AzureDataset::load(files.invocations,
                                    files.durations, files.memory,
                                    options),
                 "cc_azure_test_dur.csv:2: column 4: expected "
                 "number, got 'nan'");
}

TEST(AzureDataset, ScaleFunctionsSamplesWithReplacement)
{
    AzureFixtureFiles files;
    AzureDataset::Options options;
    options.scaleFunctions = 12;
    const auto workload = AzureDataset::load(
        files.invocations, files.durations, files.memory, options);
    // 3 base functions scaled up to 12 by sampling with replacement;
    // clones get fresh dense ids and their own jittered arrivals.
    ASSERT_EQ(workload.functions.size(), 12u);
    for (std::size_t i = 0; i < workload.functions.size(); ++i)
        EXPECT_EQ(workload.functions[i].id, i);
    // Every clone replays its base row's per-minute counts, so the
    // total at least covers the base trace (3 + 2 + 20 arrivals).
    EXPECT_GE(workload.invocations.size(), 25u);
    for (const auto& inv : workload.invocations) {
        EXPECT_LT(inv.function, workload.functions.size());
        EXPECT_LT(inv.arrival, workload.duration);
    }
    // Same options => byte-identical workload (sampling is seeded).
    const auto again = AzureDataset::load(
        files.invocations, files.durations, files.memory, options);
    ASSERT_EQ(again.invocations.size(),
              workload.invocations.size());
    for (std::size_t i = 0; i < workload.invocations.size(); ++i) {
        EXPECT_EQ(again.invocations[i].function,
                  workload.invocations[i].function);
        EXPECT_DOUBLE_EQ(again.invocations[i].arrival,
                         workload.invocations[i].arrival);
    }
}

TEST(AzureDataset, ScaleFunctionsBelowBaseIsANoOp)
{
    AzureFixtureFiles files;
    AzureDataset::Options plain;
    AzureDataset::Options scaled;
    scaled.scaleFunctions = 2; // below the 3 base functions
    const auto a = AzureDataset::load(
        files.invocations, files.durations, files.memory, plain);
    const auto b = AzureDataset::load(
        files.invocations, files.durations, files.memory, scaled);
    EXPECT_EQ(a.functions.size(), b.functions.size());
    EXPECT_EQ(a.invocations.size(), b.invocations.size());
}

TEST(AzureDataset, CompressionFieldsAreDerived)
{
    AzureFixtureFiles files;
    AzureDataset::Options options;
    const auto workload = AzureDataset::load(
        files.invocations, files.durations, files.memory, options);
    for (const auto& f : workload.functions) {
        EXPECT_GT(f.compressedMb, 0.0);
        EXPECT_GT(f.decompress[0], 0.0);
        EXPECT_NEAR(f.compressedMb * f.compressRatio, f.imageMb,
                    1e-6);
    }
}

// --- profile helpers -----------------------------------------------------------------

TEST(FunctionProfile, FasterArchAndFavorability)
{
    FunctionProfile p;
    p.exec[0] = 2.0;
    p.exec[1] = 1.5;
    EXPECT_EQ(p.fasterArch(), NodeType::ARM);
    p.exec[1] = 2.5;
    EXPECT_EQ(p.fasterArch(), NodeType::X86);
    p.coldStart[0] = 3.0;
    p.decompress[0] = 1.0;
    EXPECT_TRUE(p.compressionFavorable(NodeType::X86));
    p.decompress[0] = 4.0;
    EXPECT_FALSE(p.compressionFavorable(NodeType::X86));
}

TEST(FunctionProfile, ExecTimeScalesWithInput)
{
    FunctionProfile p;
    p.exec[0] = 2.0;
    EXPECT_DOUBLE_EQ(p.execTime(NodeType::X86, 1.5), 3.0);
}
