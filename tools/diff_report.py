#!/usr/bin/env python3
"""Structurally diff a run-report JSON against a golden file.

Walks both documents in parallel and reports every divergence with its
dotted path (e.g. ``runs.2.mean_service_s``). Numeric leaves compare
within tolerances; everything else must match exactly.

Tolerances:
  --rtol/--atol        global defaults (exact compare when both are 0)
  --tol PATTERN=RTOL   per-path relative tolerance; PATTERN is an
                       fnmatch glob over the dotted path, first match
                       wins (e.g. --tol 'runs.*.stats.*=1e-6')
  --ignore PATTERN     skip paths entirely (e.g. volatile wall times)

Exit status: 0 when the files match, 1 on any mismatch, 2 on usage or
I/O errors. Used by CI to guard bench artifacts against silent metric
drift while absorbing benign cross-platform libm noise.
"""

import argparse
import fnmatch
import json
import math
import sys


def parse_args(argv):
    parser = argparse.ArgumentParser(
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("actual", help="freshly produced report")
    parser.add_argument("golden", help="checked-in golden report")
    parser.add_argument("--rtol", type=float, default=0.0,
                        help="default relative tolerance (default: 0)")
    parser.add_argument("--atol", type=float, default=0.0,
                        help="default absolute tolerance (default: 0)")
    parser.add_argument("--tol", action="append", default=[],
                        metavar="PATTERN=RTOL",
                        help="per-path relative tolerance override")
    parser.add_argument("--ignore", action="append", default=[],
                        metavar="PATTERN",
                        help="paths to skip (fnmatch glob)")
    parser.add_argument("--max-mismatches", type=int, default=20,
                        help="stop reporting after N mismatches")
    return parser.parse_args(argv)


def load(path):
    try:
        with open(path) as f:
            return json.load(f)
    except (OSError, json.JSONDecodeError) as err:
        print(f"error: cannot load {path}: {err}", file=sys.stderr)
        sys.exit(2)


def parse_tols(specs):
    rules = []
    for spec in specs:
        pattern, sep, value = spec.partition("=")
        if not sep:
            print(f"error: --tol expects PATTERN=RTOL, got '{spec}'",
                  file=sys.stderr)
            sys.exit(2)
        try:
            rules.append((pattern, float(value)))
        except ValueError:
            print(f"error: bad tolerance in '{spec}'", file=sys.stderr)
            sys.exit(2)
    return rules


class Differ:
    def __init__(self, args):
        self.rtol = args.rtol
        self.atol = args.atol
        self.tols = parse_tols(args.tol)
        self.ignores = args.ignore
        self.limit = args.max_mismatches
        self.mismatches = []

    def note(self, path, message):
        if any(fnmatch.fnmatchcase(path, p) for p in self.ignores):
            return
        self.mismatches.append((path, message))

    def rtol_for(self, path):
        for pattern, rtol in self.tols:
            if fnmatch.fnmatchcase(path, pattern):
                return rtol
        return self.rtol

    def numbers_match(self, path, a, b):
        if math.isnan(a) and math.isnan(b):
            return True
        if math.isinf(a) or math.isinf(b):
            return a == b
        rtol = self.rtol_for(path)
        return abs(a - b) <= self.atol + rtol * abs(b)

    def walk(self, path, actual, golden):
        if len(self.mismatches) >= self.limit:
            return
        if any(fnmatch.fnmatchcase(path, p) for p in self.ignores):
            return
        # bool is an int subclass; keep True != 1.
        a_num = isinstance(actual, (int, float)) and \
            not isinstance(actual, bool)
        g_num = isinstance(golden, (int, float)) and \
            not isinstance(golden, bool)
        if a_num and g_num:
            if not self.numbers_match(path, actual, golden):
                self.note(path, f"{actual!r} != {golden!r} "
                                f"(rtol {self.rtol_for(path)!r}, "
                                f"atol {self.atol!r})")
            return
        if type(actual) is not type(golden):
            self.note(path, f"type {type(actual).__name__} != "
                            f"{type(golden).__name__}")
            return
        if isinstance(actual, dict):
            for key in golden:
                if key not in actual:
                    self.note(join(path, key), "missing in actual")
            for key in actual:
                if key not in golden:
                    self.note(join(path, key), "missing in golden")
            for key in sorted(set(actual) & set(golden)):
                self.walk(join(path, key), actual[key], golden[key])
        elif isinstance(actual, list):
            if len(actual) != len(golden):
                self.note(path, f"length {len(actual)} != "
                                f"{len(golden)}")
            for i, (a, g) in enumerate(zip(actual, golden)):
                self.walk(join(path, str(i)), a, g)
        elif actual != golden:
            self.note(path, f"{actual!r} != {golden!r}")


def join(path, key):
    return f"{path}.{key}" if path else key


def main(argv=None):
    args = parse_args(argv)
    differ = Differ(args)
    differ.walk("", load(args.actual), load(args.golden))
    if differ.mismatches:
        shown = differ.mismatches[:args.max_mismatches]
        for path, message in shown:
            print(f"mismatch at {path or '<root>'}: {message}")
        if len(differ.mismatches) >= args.max_mismatches:
            print(f"... stopped after {args.max_mismatches} "
                  "mismatches")
        print(f"{args.actual}: does NOT match {args.golden}")
        return 1
    print(f"{args.actual}: matches {args.golden}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
