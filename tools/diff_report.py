#!/usr/bin/env python3
"""Structurally diff a run-report JSON against a golden file.

Walks both documents in parallel and reports every divergence with its
dotted path (e.g. ``runs.2.mean_service_s``). Numeric leaves compare
within tolerances; everything else must match exactly.

Tolerances:
  --profile NAME       named tolerance profile:
                         exact  - byte-for-byte semantics (default)
                         golden - integers exact, floats rtol 1e-6,
                                  histogram bucket layout ignored
                                  (libm noise can move a sample across
                                  a bucket boundary)
  --rtol/--atol        global defaults layered over the profile
  --tol PATTERN=RTOL   per-path relative tolerance; PATTERN is an
                       fnmatch glob over the dotted path, first match
                       wins (e.g. --tol 'runs.*.stats.*=1e-6');
                       command-line rules outrank profile rules
  --ignore PATTERN     skip paths entirely (e.g. volatile wall times)

Modes:
  (default)            diff, exit 0 on match / 1 on mismatch
  --update             copy the actual report over the golden file and
                       exit 0 (for regenerating goldens on purpose)
  --summary FILE       additionally write a machine-readable JSON
                       verdict (match flag, leaves compared, mismatch
                       records) for CI annotation tooling

Exit status: 0 when the files match (or after --update), 1 on any
mismatch, 2 on usage or I/O errors. Used by CI to guard bench
artifacts against silent metric drift while absorbing benign
cross-platform libm noise.
"""

import argparse
import fnmatch
import json
import math
import shutil
import sys

# Named tolerance bundles. "exact" is the historical default; "golden"
# is what the golden_* ctest targets use: integer leaves (event counts)
# must match exactly, floating-point leaves absorb last-ulp libm
# differences, and histogram bucket contents are skipped because a
# boundary-straddling sample can legally hop buckets across platforms.
PROFILES = {
    "exact": {
        "rtol": 0.0,
        "atol": 0.0,
        "ints_exact": False,
        "tol": [],
        "ignore": [],
    },
    "golden": {
        "rtol": 1e-6,
        "atol": 1e-12,
        "ints_exact": True,
        "tol": [],
        "ignore": ["stats.histograms.*.buckets*"],
    },
}


def parse_args(argv):
    parser = argparse.ArgumentParser(
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("actual", help="freshly produced report")
    parser.add_argument("golden", help="checked-in golden report")
    parser.add_argument("--profile", choices=sorted(PROFILES),
                        default="exact",
                        help="named tolerance profile (default: exact)")
    parser.add_argument("--rtol", type=float, default=None,
                        help="default relative tolerance "
                             "(default: profile's)")
    parser.add_argument("--atol", type=float, default=None,
                        help="default absolute tolerance "
                             "(default: profile's)")
    parser.add_argument("--tol", action="append", default=[],
                        metavar="PATTERN=RTOL",
                        help="per-path relative tolerance override")
    parser.add_argument("--ignore", action="append", default=[],
                        metavar="PATTERN",
                        help="paths to skip (fnmatch glob)")
    parser.add_argument("--max-mismatches", type=int, default=20,
                        help="stop reporting after N mismatches")
    parser.add_argument("--update", action="store_true",
                        help="overwrite GOLDEN with ACTUAL and exit 0")
    parser.add_argument("--summary", metavar="FILE",
                        help="write a machine-readable JSON verdict")
    return parser.parse_args(argv)


def load(path):
    try:
        with open(path) as f:
            return json.load(f)
    except (OSError, json.JSONDecodeError) as err:
        print(f"error: cannot load {path}: {err}", file=sys.stderr)
        sys.exit(2)


def parse_tols(specs):
    rules = []
    for spec in specs:
        pattern, sep, value = spec.partition("=")
        if not sep:
            print(f"error: --tol expects PATTERN=RTOL, got '{spec}'",
                  file=sys.stderr)
            sys.exit(2)
        try:
            rules.append((pattern, float(value)))
        except ValueError:
            print(f"error: bad tolerance in '{spec}'", file=sys.stderr)
            sys.exit(2)
    return rules


class Differ:
    def __init__(self, args):
        profile = PROFILES[args.profile]
        self.rtol = profile["rtol"] if args.rtol is None else args.rtol
        self.atol = profile["atol"] if args.atol is None else args.atol
        self.ints_exact = profile["ints_exact"]
        # Command-line rules first: first match wins.
        self.tols = parse_tols(args.tol) + list(profile["tol"])
        self.ignores = list(args.ignore) + list(profile["ignore"])
        self.limit = args.max_mismatches
        self.mismatches = []
        self.compared = 0

    def note(self, path, kind, message):
        if any(fnmatch.fnmatchcase(path, p) for p in self.ignores):
            return
        self.mismatches.append((path, kind, message))

    def rtol_for(self, path):
        for pattern, rtol in self.tols:
            if fnmatch.fnmatchcase(path, pattern):
                return rtol
        return self.rtol

    def numbers_match(self, path, a, b):
        if isinstance(a, int) and isinstance(b, int) \
                and self.ints_exact:
            return a == b
        if math.isnan(a) and math.isnan(b):
            return True
        if math.isinf(a) or math.isinf(b):
            return a == b
        rtol = self.rtol_for(path)
        return abs(a - b) <= self.atol + rtol * abs(b)

    def walk(self, path, actual, golden):
        if len(self.mismatches) >= self.limit:
            return
        if any(fnmatch.fnmatchcase(path, p) for p in self.ignores):
            return
        # bool is an int subclass; keep True != 1.
        a_num = isinstance(actual, (int, float)) and \
            not isinstance(actual, bool)
        g_num = isinstance(golden, (int, float)) and \
            not isinstance(golden, bool)
        if a_num and g_num:
            self.compared += 1
            if not self.numbers_match(path, actual, golden):
                self.note(path, "value",
                          f"{actual!r} != {golden!r} "
                          f"(rtol {self.rtol_for(path)!r}, "
                          f"atol {self.atol!r})")
            return
        if type(actual) is not type(golden):
            self.note(path, "type",
                      f"type {type(actual).__name__} != "
                      f"{type(golden).__name__}")
            return
        if isinstance(actual, dict):
            for key in golden:
                if key not in actual:
                    self.note(join(path, key), "missing",
                              "missing in actual")
            for key in actual:
                if key not in golden:
                    self.note(join(path, key), "extra",
                              "missing in golden")
            for key in sorted(set(actual) & set(golden)):
                self.walk(join(path, key), actual[key], golden[key])
        elif isinstance(actual, list):
            if len(actual) != len(golden):
                self.note(path, "length",
                          f"length {len(actual)} != {len(golden)}")
            for i, (a, g) in enumerate(zip(actual, golden)):
                self.walk(join(path, str(i)), a, g)
        else:
            self.compared += 1
            if actual != golden:
                self.note(path, "value", f"{actual!r} != {golden!r}")


def join(path, key):
    return f"{path}.{key}" if path else key


def write_summary(path, args, differ, match):
    summary = {
        "actual": args.actual,
        "golden": args.golden,
        "profile": args.profile,
        "match": match,
        "compared_leaves": differ.compared,
        "truncated": len(differ.mismatches) >= args.max_mismatches,
        "mismatches": [
            {"path": p or "<root>", "kind": kind, "detail": detail}
            for p, kind, detail in differ.mismatches
        ],
    }
    try:
        with open(path, "w") as f:
            json.dump(summary, f, indent=2)
            f.write("\n")
    except OSError as err:
        print(f"error: cannot write summary {path}: {err}",
              file=sys.stderr)
        sys.exit(2)


def main(argv=None):
    args = parse_args(argv)
    if args.update:
        # Validate the replacement parses before clobbering the golden.
        load(args.actual)
        try:
            shutil.copyfile(args.actual, args.golden)
        except OSError as err:
            print(f"error: cannot update {args.golden}: {err}",
                  file=sys.stderr)
            sys.exit(2)
        print(f"updated {args.golden} from {args.actual}")
        return 0
    differ = Differ(args)
    differ.walk("", load(args.actual), load(args.golden))
    match = not differ.mismatches
    if args.summary:
        write_summary(args.summary, args, differ, match)
    if not match:
        shown = differ.mismatches[:args.max_mismatches]
        for path, _kind, message in shown:
            print(f"mismatch at {path or '<root>'}: {message}")
        if len(differ.mismatches) >= args.max_mismatches:
            print(f"... stopped after {args.max_mismatches} "
                  "mismatches")
        print(f"{args.actual}: does NOT match {args.golden}")
        return 1
    print(f"{args.actual}: matches {args.golden} "
          f"({differ.compared} leaves compared)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
