#!/usr/bin/env sh
# Launch a multi-host distributed bench sweep over ssh.
#
# Runs the master locally with --dist-master PORT, then starts one
# worker per host (the SAME bench binary, the same scenario flags)
# with --dist-worker <master>:<port>. Assumes the repo is built at
# the same path on every host and that passwordless ssh works.
# Workers write no artifacts; the master's JSON lands wherever the
# bench flags say, byte-identical to a single-process run
# (DESIGN.md §11). Workers that die are re-dispatched around; hosts
# may even join late — rerun a single worker command by hand and the
# master's catch-up handshake brings it into lockstep.
#
# Usage:
#   tools/dist_launch.sh --bench fig07_main_comparison --port 9410 \
#       --hosts hostA,hostB,hostC [--master-addr ADDR] \
#       [--build-dir build] -- [bench flags...]
#
# Everything after `--` is passed to BOTH the master and the workers
# (fingerprint checks require identical scenario flags on each end).

set -eu

bench="" port="" hosts="" master_addr="" build_dir="build"

usage() {
    sed -n '2,20p' "$0" | sed 's/^# \{0,1\}//'
    exit 1
}

while [ $# -gt 0 ]; do
    case "$1" in
        --bench) bench=$2; shift 2 ;;
        --port) port=$2; shift 2 ;;
        --hosts) hosts=$2; shift 2 ;;
        --master-addr) master_addr=$2; shift 2 ;;
        --build-dir) build_dir=$2; shift 2 ;;
        --) shift; break ;;
        *) echo "dist_launch: unknown option '$1'" >&2; usage ;;
    esac
done
[ -n "$bench" ] && [ -n "$port" ] && [ -n "$hosts" ] || usage

repo_dir=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
exe="$repo_dir/$build_dir/bench/$bench"
[ -x "$exe" ] || {
    echo "dist_launch: $exe not built" >&2
    exit 1
}
[ -n "$master_addr" ] || master_addr=$(hostname -f 2>/dev/null ||
    hostname)

# Worker count doubles as --dist-min-workers so the master waits for
# the whole fleet before dealing the first plan.
nworkers=$(printf '%s\n' "$hosts" | tr ',' '\n' | grep -c .)

echo "dist_launch: master $master_addr:$port, $nworkers workers" >&2
"$exe" --dist-master "$port" --dist-min-workers "$nworkers" "$@" &
master_pid=$!

# Give the listener a beat; workers also retry their connect for
# 15 s, so this is comfort, not correctness.
sleep 1

worker_pids=""
for host in $(printf '%s\n' "$hosts" | tr ',' ' '); do
    echo "dist_launch: starting worker on $host" >&2
    # shellcheck disable=SC2029  # client-side expansion intended
    ssh "$host" "cd '$repo_dir' && exec '$exe' \
        --dist-worker '$master_addr:$port' --quiet $*" &
    worker_pids="$worker_pids $!"
done

status=0
wait "$master_pid" || status=$?
# The master's Shutdown drains workers; reap the ssh sessions.
for pid in $worker_pids; do
    wait "$pid" || true
done
exit "$status"
