#!/usr/bin/env python3
"""Golden-artifact harness driver for one bench binary.

Three modes, all built on the bench's ``--golden-mode`` preset (a
seconds-scale scenario so the whole suite fits in a CI job):

  diff         run the bench once and structurally diff its JSON
               artifact against bench/golden/<name>.golden.json using
               diff_report's "golden" tolerance profile. This is what
               the ``golden_<bench>`` ctest targets execute.
  determinism  run the bench twice, --threads 1 and --threads N, into
               two scratch artifacts and require them byte-identical.
               This is the ``determinism_<bench>`` ctest targets: the
               RunEngine's contract is that thread count never changes
               results.
  update       regenerate the golden in place (run + copy). Used by
               maintainers after an intentional metric change; see
               EXPERIMENTS.md "Regenerating goldens".
  dist         run the bench locally and again as a distributed sweep
               (master + ``--dist-workers`` spawned worker processes
               over loopback TCP) and require the two artifacts
               byte-identical. This is the ``dist_identity_<bench>``
               ctest targets: distribution must never change results.
  dist-kill    like dist, but the master starts the first worker with
               ``--dist-die-after 1`` so it dies mid-sweep and its
               in-flight job is re-dispatched. The artifact must still
               be byte-identical to the local run (``dist_kill_<bench>``
               ctest target).

Exit status: 0 on success, 1 on mismatch, 2 on usage/exec errors.
"""

import argparse
import os
import subprocess
import sys

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
import diff_report  # noqa: E402


def parse_args(argv):
    parser = argparse.ArgumentParser(
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("--mode", required=True,
                        choices=["diff", "determinism", "update",
                                 "dist", "dist-kill"])
    parser.add_argument("--bench", required=True,
                        help="path to the bench executable")
    parser.add_argument("--name", required=True,
                        help="bench name, e.g. fig07_main_comparison")
    parser.add_argument("--golden-dir", default="bench/golden",
                        help="directory of checked-in goldens")
    parser.add_argument("--out-dir", default="bench/out",
                        help="scratch directory for fresh artifacts")
    parser.add_argument("--threads", type=int, default=4,
                        help="thread count for the threaded run")
    parser.add_argument("--workers", type=int, default=2,
                        help="worker processes for dist/dist-kill")
    return parser.parse_args(argv)


def run_bench(exe, json_path, threads, extra=()):
    cmd = [exe, "--golden-mode", "--quiet", "--threads", str(threads),
           "--json", json_path] + list(extra)
    try:
        proc = subprocess.run(cmd, stdout=subprocess.DEVNULL)
    except OSError as err:
        print(f"error: cannot run {exe}: {err}", file=sys.stderr)
        sys.exit(2)
    if proc.returncode != 0:
        print(f"error: {' '.join(cmd)} exited {proc.returncode}",
              file=sys.stderr)
        sys.exit(2)
    if not os.path.exists(json_path):
        print(f"error: {exe} did not write {json_path}",
              file=sys.stderr)
        sys.exit(2)


def main(argv=None):
    args = parse_args(argv)
    os.makedirs(args.out_dir, exist_ok=True)
    golden = os.path.join(args.golden_dir,
                          f"{args.name}.golden.json")

    if args.mode == "determinism":
        serial = os.path.join(args.out_dir,
                              f"{args.name}.serial.json")
        threaded = os.path.join(args.out_dir,
                                f"{args.name}.threaded.json")
        run_bench(args.bench, serial, threads=1)
        run_bench(args.bench, threaded, threads=args.threads)
        with open(serial, "rb") as f:
            serial_bytes = f.read()
        with open(threaded, "rb") as f:
            threaded_bytes = f.read()
        if serial_bytes != threaded_bytes:
            print(f"{args.name}: --threads 1 and --threads "
                  f"{args.threads} artifacts differ; structural diff:")
            # Exact structural diff for a readable failure message.
            diff_report.main([threaded, serial, "--profile", "exact"])
            return 1
        print(f"{args.name}: serial and {args.threads}-thread "
              "artifacts are byte-identical "
              f"({len(serial_bytes)} bytes)")
        return 0

    if args.mode in ("dist", "dist-kill"):
        local = os.path.join(args.out_dir, f"{args.name}.local.json")
        dist = os.path.join(args.out_dir, f"{args.name}.dist.json")
        run_bench(args.bench, local, threads=args.threads)
        extra = ["--dist-workers", str(args.workers)]
        if args.mode == "dist-kill":
            extra.append("--dist-kill-one")
        run_bench(args.bench, dist, threads=args.threads, extra=extra)
        with open(local, "rb") as f:
            local_bytes = f.read()
        with open(dist, "rb") as f:
            dist_bytes = f.read()
        if local_bytes != dist_bytes:
            print(f"{args.name}: local and distributed "
                  f"({args.workers} workers, mode {args.mode}) "
                  "artifacts differ; structural diff:")
            diff_report.main([dist, local, "--profile", "exact"])
            return 1
        print(f"{args.name}: local and {args.workers}-worker "
              f"{'kill-one ' if args.mode == 'dist-kill' else ''}"
              "distributed artifacts are byte-identical "
              f"({len(local_bytes)} bytes)")
        return 0

    fresh = os.path.join(args.out_dir, f"{args.name}.golden.json")
    run_bench(args.bench, fresh, threads=args.threads)
    if args.mode == "update":
        os.makedirs(args.golden_dir, exist_ok=True)
        return diff_report.main([fresh, golden, "--update"])
    return diff_report.main([fresh, golden, "--profile", "golden"])


if __name__ == "__main__":
    sys.exit(main())
