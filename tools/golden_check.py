#!/usr/bin/env python3
"""Golden-artifact harness driver for one bench binary.

Three modes, all built on the bench's ``--golden-mode`` preset (a
seconds-scale scenario so the whole suite fits in a CI job):

  diff         run the bench once and structurally diff its JSON
               artifact against bench/golden/<name>.golden.json using
               diff_report's "golden" tolerance profile. This is what
               the ``golden_<bench>`` ctest targets execute.
  determinism  run the bench twice, --threads 1 and --threads N, into
               two scratch artifacts and require them byte-identical.
               This is the ``determinism_<bench>`` ctest targets: the
               RunEngine's contract is that thread count never changes
               results.
  update       regenerate the golden in place (run + copy). Used by
               maintainers after an intentional metric change; see
               EXPERIMENTS.md "Regenerating goldens".
  dist         run the bench locally and again as a distributed sweep
               (master + ``--dist-workers`` spawned worker processes
               over loopback TCP) and require the two artifacts
               byte-identical. This is the ``dist_identity_<bench>``
               ctest targets: distribution must never change results.
  dist-kill    like dist, but the master starts the first worker with
               ``--dist-die-after 1`` so it dies mid-sweep and its
               in-flight job is re-dispatched. The artifact must still
               be byte-identical to the local run (``dist_kill_<bench>``
               ctest target).
  dist-chaos   like dist, but every worker wraps its socket in the
               deterministic fault injector (``--dist-chaos-profile``/
               ``--dist-chaos-seed``): short reads/writes, delayed
               flushes, mid-frame disconnects, refused connects. The
               artifact must still be byte-identical to the local run
               (``dist_chaos_<bench>`` ctest target).
  dist-resume  crash-safety check for the master's job journal. Runs
               the sweep once locally, then distributed with
               ``--dist-master-die-after K`` so the master _Exit()s
               after K jobs are journaled, then again with ``--resume``.
               Asserts the journal held exactly K job records at the
               crash, that the resumed master dispatched only the
               remaining jobs over the wire (sum of the resume run's
               wall.dist.worker*.jobs counters == total - K), and that
               the final artifact is byte-identical to the local run
               (``dist_resume_<bench>`` ctest target).
  stress       run the bench once with ``--stress`` instead of
               ``--golden-mode``. The bench itself asserts its
               wall-clock / peak-RSS budgets and the serial-vs-threaded
               byte identity in-process and exits nonzero on any
               violation, so this mode just propagates the exit status
               (and keeps stdout in the ctest log — the budget numbers
               are the interesting output). This is the
               ``stress_fig_scale`` ctest target (LABELS stress,
               CC_STRESS_TESTS=ON only).

Exit status: 0 on success, 1 on mismatch, 2 on usage/exec errors.
"""

import argparse
import json
import os
import subprocess
import sys

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
import diff_report  # noqa: E402


def parse_args(argv):
    parser = argparse.ArgumentParser(
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("--mode", required=True,
                        choices=["diff", "determinism", "update",
                                 "dist", "dist-kill", "dist-chaos",
                                 "dist-resume", "stress"])
    parser.add_argument("--bench", required=True,
                        help="path to the bench executable")
    parser.add_argument("--name", required=True,
                        help="bench name, e.g. fig07_main_comparison")
    parser.add_argument("--golden-dir", default="bench/golden",
                        help="directory of checked-in goldens")
    parser.add_argument("--out-dir", default="bench/out",
                        help="scratch directory for fresh artifacts")
    parser.add_argument("--threads", type=int, default=4,
                        help="thread count for the threaded run")
    parser.add_argument("--workers", type=int, default=2,
                        help="worker processes for dist modes")
    parser.add_argument("--chaos-profile", default="light",
                        help="fault-injection profile for dist-chaos")
    parser.add_argument("--chaos-seed", type=int, default=7,
                        help="fault-injection seed for dist-chaos")
    parser.add_argument("--die-after", type=int, default=2,
                        help="journaled jobs before the dist-resume "
                             "master self-kills")
    return parser.parse_args(argv)


def run_bench_raw(exe, json_path, threads, extra=()):
    """Run the bench and return its exit status (may be nonzero)."""
    cmd = [exe, "--golden-mode", "--quiet", "--threads", str(threads),
           "--json", json_path] + list(extra)
    try:
        proc = subprocess.run(cmd, stdout=subprocess.DEVNULL)
    except OSError as err:
        print(f"error: cannot run {exe}: {err}", file=sys.stderr)
        sys.exit(2)
    return proc.returncode


def run_bench(exe, json_path, threads, extra=()):
    code = run_bench_raw(exe, json_path, threads, extra)
    if code != 0:
        print(f"error: {exe} {' '.join(extra)} exited {code}",
              file=sys.stderr)
        sys.exit(2)
    if not os.path.exists(json_path):
        print(f"error: {exe} did not write {json_path}",
              file=sys.stderr)
        sys.exit(2)


def count_journal_jobs(path):
    """Count Job records in a master journal (src/dist/journal.hpp).

    The journal is a sequence of wire frames — [u32 length LE]
    [u8 type][u8 codec][body] with length == len(body) + 2 — and a
    Job record is frame type 102. A torn tail (partial frame from a
    crash mid-append) is ignored, matching the C++ replay.
    """
    with open(path, "rb") as f:
        data = f.read()
    jobs = 0
    off = 0
    while off + 4 <= len(data):
        length = int.from_bytes(data[off:off + 4], "little")
        if length < 2 or off + 4 + length > len(data):
            break  # torn tail
        if data[off + 4] == 102:
            jobs += 1
        off += 4 + length
    return jobs


def dist_worker_job_total(stats_path):
    """Sum wall.dist.worker*.jobs counters from a --stats-out dump."""
    with open(stats_path) as f:
        doc = json.load(f)
    counters = doc.get("stats", {}).get("counters", {})
    return sum(int(value) for name, value in counters.items()
               if name.startswith("wall.dist.worker") and
               name.endswith(".jobs"))


def main(argv=None):
    args = parse_args(argv)
    os.makedirs(args.out_dir, exist_ok=True)
    golden = os.path.join(args.golden_dir,
                          f"{args.name}.golden.json")

    if args.mode == "stress":
        out = os.path.join(args.out_dir, f"{args.name}.json")
        cmd = [args.bench, "--stress", "--quiet",
               "--threads", str(args.threads), "--json", out]
        try:
            # stdout stays attached: the budget table is the output a
            # nightly-log reader wants to see.
            proc = subprocess.run(cmd)
        except OSError as err:
            print(f"error: cannot run {args.bench}: {err}",
                  file=sys.stderr)
            return 2
        if proc.returncode != 0:
            print(f"{args.name}: stress run exited "
                  f"{proc.returncode} (budget or serial-vs-threaded "
                  "identity violation)", file=sys.stderr)
            return 1
        if not os.path.exists(out):
            print(f"{args.name}: stress run wrote no artifact at "
                  f"{out}", file=sys.stderr)
            return 1
        print(f"{args.name}: stress budgets held and serial == "
              f"--threads {args.threads}")
        return 0

    if args.mode == "determinism":
        serial = os.path.join(args.out_dir,
                              f"{args.name}.serial.json")
        threaded = os.path.join(args.out_dir,
                                f"{args.name}.threaded.json")
        serial_trace = os.path.join(args.out_dir,
                                    f"{args.name}.serial.trace.json")
        threaded_trace = os.path.join(
            args.out_dir, f"{args.name}.threaded.trace.json")
        # Exercise the whole observability surface while checking
        # determinism: sampled traces and interval flow series must be
        # byte-identical across thread counts just like the report.
        obs = ["--trace-sample", "4", "--stats-interval", "60"]
        run_bench(args.bench, serial, threads=1,
                  extra=obs + ["--trace-out", serial_trace])
        run_bench(args.bench, threaded, threads=args.threads,
                  extra=obs + ["--trace-out", threaded_trace])
        with open(serial, "rb") as f:
            serial_bytes = f.read()
        with open(threaded, "rb") as f:
            threaded_bytes = f.read()
        if serial_bytes != threaded_bytes:
            print(f"{args.name}: --threads 1 and --threads "
                  f"{args.threads} artifacts differ; structural diff:")
            # Exact structural diff for a readable failure message.
            diff_report.main([threaded, serial, "--profile", "exact"])
            return 1
        with open(serial_trace, "rb") as f:
            serial_trace_bytes = f.read()
        with open(threaded_trace, "rb") as f:
            threaded_trace_bytes = f.read()
        if serial_trace_bytes != threaded_trace_bytes:
            print(f"{args.name}: --threads 1 and --threads "
                  f"{args.threads} sampled trace files differ "
                  f"({len(serial_trace_bytes)} vs "
                  f"{len(threaded_trace_bytes)} bytes)")
            return 1
        print(f"{args.name}: serial and {args.threads}-thread "
              "artifacts are byte-identical "
              f"({len(serial_bytes)} bytes report, "
              f"{len(serial_trace_bytes)} bytes sampled trace)")
        return 0

    if args.mode in ("dist", "dist-kill", "dist-chaos"):
        local = os.path.join(args.out_dir, f"{args.name}.local.json")
        dist = os.path.join(args.out_dir, f"{args.name}.dist.json")
        run_bench(args.bench, local, threads=args.threads)
        extra = ["--dist-workers", str(args.workers)]
        if args.mode == "dist-kill":
            extra.append("--dist-kill-one")
        if args.mode == "dist-chaos":
            extra += ["--dist-chaos-profile", args.chaos_profile,
                      "--dist-chaos-seed", str(args.chaos_seed)]
        run_bench(args.bench, dist, threads=args.threads, extra=extra)
        with open(local, "rb") as f:
            local_bytes = f.read()
        with open(dist, "rb") as f:
            dist_bytes = f.read()
        if local_bytes != dist_bytes:
            print(f"{args.name}: local and distributed "
                  f"({args.workers} workers, mode {args.mode}) "
                  "artifacts differ; structural diff:")
            diff_report.main([dist, local, "--profile", "exact"])
            return 1
        variant = {"dist-kill": "kill-one ",
                   "dist-chaos":
                   f"chaos({args.chaos_profile}/{args.chaos_seed}) "
                   }.get(args.mode, "")
        print(f"{args.name}: local and {args.workers}-worker "
              f"{variant}distributed artifacts are byte-identical "
              f"({len(local_bytes)} bytes)")
        return 0

    if args.mode == "dist-resume":
        local = os.path.join(args.out_dir, f"{args.name}.local.json")
        dist = os.path.join(args.out_dir, f"{args.name}.dist.json")
        journal = os.path.join(args.out_dir, f"{args.name}.journal")
        stats = os.path.join(args.out_dir, f"{args.name}.stats.json")
        for stale in (dist, journal, stats):
            if os.path.exists(stale):
                os.remove(stale)
        run_bench(args.bench, local, threads=args.threads)

        base = ["--dist-workers", str(args.workers),
                "--journal", journal]
        code = run_bench_raw(
            args.bench, dist, threads=args.threads,
            extra=base + ["--dist-master-die-after",
                          str(args.die_after)])
        if code == 0:
            print(f"{args.name}: master with --dist-master-die-after "
                  f"{args.die_after} exited 0 — it never crashed, so "
                  "resume was not exercised", file=sys.stderr)
            return 1
        if not os.path.exists(journal):
            print(f"{args.name}: crashed master left no journal at "
                  f"{journal}", file=sys.stderr)
            return 1
        pre = count_journal_jobs(journal)
        if pre != args.die_after:
            print(f"{args.name}: journal holds {pre} job records "
                  f"after the crash, expected exactly "
                  f"{args.die_after}", file=sys.stderr)
            return 1

        run_bench(args.bench, dist, threads=args.threads,
                  extra=base + ["--resume", "--stats-out", stats])
        post = count_journal_jobs(journal)
        redispatched = dist_worker_job_total(stats)
        if redispatched != post - pre:
            print(f"{args.name}: resume run dispatched "
                  f"{redispatched} jobs over the wire but the journal "
                  f"grew by {post - pre} ({pre} -> {post}) — journal "
                  "replay did not skip the completed jobs",
                  file=sys.stderr)
            return 1
        with open(local, "rb") as f:
            local_bytes = f.read()
        with open(dist, "rb") as f:
            dist_bytes = f.read()
        if local_bytes != dist_bytes:
            print(f"{args.name}: local and resumed-after-crash "
                  "artifacts differ; structural diff:")
            diff_report.main([dist, local, "--profile", "exact"])
            return 1
        print(f"{args.name}: resumed master skipped {pre} journaled "
              f"jobs, dispatched the remaining {redispatched}, and "
              "the artifact is byte-identical to the local run "
              f"({len(local_bytes)} bytes)")
        return 0

    fresh = os.path.join(args.out_dir, f"{args.name}.golden.json")
    run_bench(args.bench, fresh, threads=args.threads)
    if args.mode == "update":
        os.makedirs(args.golden_dir, exist_ok=True)
        return diff_report.main([fresh, golden, "--update"])
    return diff_report.main([fresh, golden, "--profile", "golden"])


if __name__ == "__main__":
    sys.exit(main())
