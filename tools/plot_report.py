#!/usr/bin/env python3
"""Render PNG figures from bench JSON artifacts.

Takes one or more run reports written by the bench binaries
(``--json``) and draws the corresponding paper-style figure:

  fig07_main_comparison  grouped service-time bars (mean/p95/p99) per
                         policy with warm-start fraction and keep-alive
                         spend annotations (paper Fig. 7 shape)
  fig_fault_sweep        per-policy service time and availability
                         across the fault scenarios (healthy, MTBF
                         sweep, correlated domains)
  fig03_optimizer_...    optimizer quality vs problem size: score and
                         objective evaluations per optimizer over N
  fig_snapshot           latency-vs-cost frontier (residency spend vs
                         mean service, one point per controller
                         variant) plus per-catalog-class service bars
  anything else          generic mean/p95 service-time bars per run

Reports whose runs carry an ``intervals`` series (--stats-interval)
additionally get a ``<stem>.timeline.png`` panel: cold-start rate,
keep-alive spend rate, and wait-queue depth over sim time, one line
per run.

Matplotlib is optional: when it is not importable this script prints a
note and exits 0 so CI can invoke it unconditionally (the plot step is
non-gating on minimal containers). Usage:

    python3 tools/plot_report.py --out-dir build/plots \\
        bench/out/fig07_main_comparison.json ...

Exit status: 0 on success or missing matplotlib, 2 on bad inputs.
"""

import argparse
import json
import os
import sys


def parse_args(argv):
    parser = argparse.ArgumentParser(
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("artifacts", nargs="+",
                        help="bench JSON artifacts to render")
    parser.add_argument("--out-dir", default="bench/plots",
                        help="directory for the PNG outputs")
    parser.add_argument("--dpi", type=int, default=150)
    return parser.parse_args(argv)


def load_matplotlib():
    """Import matplotlib with the headless backend, or None."""
    try:
        import matplotlib
    except ImportError:
        return None
    matplotlib.use("Agg")
    import matplotlib.pyplot as plt
    return plt


def plot_fig07(plt, report, path, dpi):
    runs = report["runs"]
    names = [r["name"] for r in runs]
    x = range(len(runs))
    width = 0.27
    fig, (top, bottom) = plt.subplots(
        2, 1, figsize=(8, 7),
        gridspec_kw={"height_ratios": [3, 2]})
    for offset, key, label in (
            (-width, "mean_service_s", "mean"),
            (0.0, "p95_service_s", "p95"),
            (width, "p99_service_s", "p99")):
        top.bar([i + offset for i in x],
                [r[key] for r in runs], width, label=label)
    top.set_xticks(list(x))
    top.set_xticklabels(names, rotation=15)
    top.set_ylabel("service time (s)")
    top.set_title(report.get("bench", "fig07")
                  + " — service time per policy")
    top.legend()

    bottom.bar(list(x), [r["warm_start_fraction"] for r in runs],
               0.5, color="tab:green", label="warm-start fraction")
    spend = bottom.twinx()
    spend.plot(list(x), [r["keepalive_spend_usd"] for r in runs],
               "ko--", label="keep-alive spend")
    bottom.set_xticks(list(x))
    bottom.set_xticklabels(names, rotation=15)
    bottom.set_ylim(0.0, 1.0)
    bottom.set_ylabel("warm-start fraction")
    spend.set_ylabel("keep-alive spend (USD)")
    bottom.legend(loc="lower left")
    spend.legend(loc="lower right")
    fig.tight_layout()
    fig.savefig(path, dpi=dpi)
    plt.close(fig)


def plot_fault_sweep(plt, report, path, dpi):
    # Run names are "<policy>@<scenario>"; pivot into per-policy
    # series over the scenario axis, preserving artifact order.
    scenarios, policies = [], {}
    for run in report["runs"]:
        policy, _, scenario = run["name"].partition("@")
        if scenario not in scenarios:
            scenarios.append(scenario)
        policies.setdefault(policy, {})[scenario] = run

    fig, (top, bottom) = plt.subplots(2, 1, figsize=(9, 7),
                                      sharex=True)
    x = range(len(scenarios))
    for policy, by_scenario in policies.items():
        xs = [i for i, s in enumerate(scenarios) if s in by_scenario]
        top.plot(xs, [by_scenario[scenarios[i]]["p95_service_s"]
                      for i in xs], "o-", label=policy)
        bottom.plot(xs, [by_scenario[scenarios[i]]["availability"]
                         for i in xs], "o-", label=policy)
    top.set_ylabel("p95 service time (s)")
    top.set_title(report.get("bench", "fault sweep")
                  + " — behaviour under node faults")
    top.legend()
    bottom.set_ylabel("availability")
    bottom.set_xticks(list(x))
    bottom.set_xticklabels(scenarios, rotation=15)
    bottom.set_xlabel("fault scenario")
    fig.tight_layout()
    fig.savefig(path, dpi=dpi)
    plt.close(fig)


def plot_fig03(plt, report, path, dpi):
    # Run names are "<optimizer>/N=<n>"; pivot into per-optimizer
    # series over the problem-size axis, preserving artifact order.
    sizes, optimizers = [], {}
    for run in report["runs"]:
        optimizer, _, size = run["name"].partition("/N=")
        if size not in sizes:
            sizes.append(size)
        optimizers.setdefault(optimizer, {})[size] = run

    fig, (top, bottom) = plt.subplots(2, 1, figsize=(8, 7),
                                      sharex=True)
    x = range(len(sizes))
    for optimizer, by_size in optimizers.items():
        xs = [i for i, s in enumerate(sizes) if s in by_size]
        top.plot(xs, [by_size[sizes[i]]["score"] for i in xs],
                 "o-", label=optimizer)
        bottom.plot(xs, [by_size[sizes[i]]["evaluations"]
                         for i in xs], "o-", label=optimizer)
    top.set_ylabel("objective score")
    top.set_title(report.get("bench", "fig03")
                  + " — optimizer quality vs problem size")
    top.legend()
    bottom.set_yscale("log")
    bottom.set_ylabel("objective evaluations")
    bottom.set_xticks(list(x))
    bottom.set_xticklabels([f"N={s}" for s in sizes])
    bottom.set_xlabel("problem size")
    fig.tight_layout()
    fig.savefig(path, dpi=dpi)
    plt.close(fig)


def plot_fig_snapshot(plt, report, path, dpi):
    # Frontier panel: each controller variant is one point in the
    # (residency spend, mean service) plane — closer to the origin is
    # better on both axes. The hybrid should sit weakly below-left of
    # both single-mechanism ablations. Below it, the per-catalog-class
    # mean service bars show the complementary regimes.
    runs = report["runs"]
    fig, (frontier, classes) = plt.subplots(
        2, 1, figsize=(8, 8),
        gridspec_kw={"height_ratios": [3, 2]})
    for run in runs:
        spend = (run.get("keepalive_spend_usd", 0.0)
                 + run.get("snapshot_storage_spend_usd", 0.0))
        mean = run["mean_service_s"]
        frontier.plot([spend], [mean], "o", markersize=9)
        label = run["name"]
        if "objective_s" in run:
            label += f"\nobj {run['objective_s']:.2f} s"
        frontier.annotate(label, (spend, mean),
                          textcoords="offset points", xytext=(8, -4),
                          fontsize=8)
    frontier.set_xlabel("residency spend: keep-alive + snapshot (USD)")
    frontier.set_ylabel("mean service time (s)")
    frontier.set_title(report.get("bench", "fig_snapshot")
                       + " — latency-vs-cost frontier")
    frontier.margins(x=0.25, y=0.15)

    class_names = list(runs[0].get("service_by_class", {}))
    if class_names:
        x = range(len(class_names))
        width = 0.8 / max(len(runs), 1)
        for v, run in enumerate(runs):
            by_class = run.get("service_by_class", {})
            classes.bar(
                [i + (v - (len(runs) - 1) / 2.0) * width for i in x],
                [by_class.get(c, {}).get("mean_service_s", 0.0)
                 for c in class_names],
                width, label=run["name"])
        classes.set_xticks(list(x))
        classes.set_xticklabels(class_names, rotation=15, fontsize=8)
        classes.set_ylabel("mean service (s)")
        classes.legend(fontsize=8)
    fig.tight_layout()
    fig.savefig(path, dpi=dpi)
    plt.close(fig)


def plot_timeline(plt, report, path, dpi):
    """Interval-flow panel: per-run rates over sim time.

    Uses the ``intervals`` series runs record under --stats-interval;
    returns False when no run carries one.
    """
    runs = [r for r in report.get("runs", [])
            if isinstance(r, dict) and r.get("intervals")]
    if not runs:
        return False

    fig, (starts, spend, queue) = plt.subplots(
        3, 1, figsize=(9, 8), sharex=True)
    for run in runs:
        series = run["intervals"]
        hours, cold_rate, spend_rate, depth = [], [], [], []
        prev_end = 0.0
        for sample in series:
            end = sample["end_s"]
            length = max(end - prev_end, 1e-9)
            prev_end = end
            hours.append(end / 3600.0)
            cold_rate.append(sample["cold_starts"] / length)
            spend_rate.append(sample["spend_usd"] / length * 3600.0)
            depth.append(sample["wait_queue"])
        name = run.get("name", "run")
        starts.plot(hours, cold_rate, "-", label=name)
        spend.plot(hours, spend_rate, "-", label=name)
        queue.step(hours, depth, where="post", label=name)
    starts.set_ylabel("cold starts / s")
    starts.set_title(report.get("bench", "report")
                     + " — interval flows over sim time")
    starts.legend()
    spend.set_ylabel("keep-alive spend (USD/h)")
    queue.set_ylabel("wait-queue depth")
    queue.set_xlabel("sim time (h)")
    fig.tight_layout()
    fig.savefig(path, dpi=dpi)
    plt.close(fig)
    return True


def plot_generic(plt, report, path, dpi):
    runs = report.get("runs", [])
    rows = [r for r in runs
            if isinstance(r, dict) and "mean_service_s" in r]
    if not rows:
        return False
    x = range(len(rows))
    fig, axis = plt.subplots(
        figsize=(max(6, 0.9 * len(rows)), 4.5))
    axis.bar([i - 0.2 for i in x],
             [r["mean_service_s"] for r in rows], 0.4, label="mean")
    axis.bar([i + 0.2 for i in x],
             [r.get("p95_service_s", 0.0) for r in rows], 0.4,
             label="p95")
    axis.set_xticks(list(x))
    axis.set_xticklabels([r.get("name", str(i)) for i, r in
                          enumerate(rows)], rotation=30, ha="right")
    axis.set_ylabel("service time (s)")
    axis.set_title(report.get("bench", "bench report"))
    axis.legend()
    fig.tight_layout()
    fig.savefig(path, dpi=dpi)
    plt.close(fig)
    return True


def main(argv=None):
    args = parse_args(argv)
    plt = load_matplotlib()
    if plt is None:
        print("plot_report: matplotlib not available; skipping "
              f"{len(args.artifacts)} artifact(s)")
        return 0

    os.makedirs(args.out_dir, exist_ok=True)
    failures = 0
    for artifact in args.artifacts:
        try:
            with open(artifact) as handle:
                report = json.load(handle)
        except (OSError, ValueError) as err:
            print(f"error: cannot read {artifact}: {err}",
                  file=sys.stderr)
            failures += 1
            continue
        bench = report.get("bench", "")
        stem = bench or os.path.splitext(
            os.path.basename(artifact))[0]
        path = os.path.join(args.out_dir, f"{stem}.png")
        if bench.startswith("fig07"):
            plot_fig07(plt, report, path, args.dpi)
        elif bench.startswith("fig_fault_sweep"):
            plot_fault_sweep(plt, report, path, args.dpi)
        elif bench.startswith("fig03"):
            plot_fig03(plt, report, path, args.dpi)
        elif bench.startswith("fig_snapshot"):
            plot_fig_snapshot(plt, report, path, args.dpi)
        elif not plot_generic(plt, report, path, args.dpi):
            print(f"warning: {artifact} has no plottable runs; "
                  "skipped", file=sys.stderr)
            continue
        print(f"plot_report: wrote {path}")
        timeline = os.path.join(args.out_dir, f"{stem}.timeline.png")
        if plot_timeline(plt, report, timeline, args.dpi):
            print(f"plot_report: wrote {timeline}")
    return 2 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
