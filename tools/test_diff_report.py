#!/usr/bin/env python3
"""Error-path and tolerance tests for tools/diff_report.py.

Runs under plain ``python3 -m unittest`` (stdlib only — the CI images
do not ship pytest); pytest also collects it unmodified. Registered in
ctest as ``diff_report_test``.
"""

import contextlib
import io
import json
import os
import sys
import tempfile
import unittest

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
import diff_report  # noqa: E402


class DiffReportTest(unittest.TestCase):
    def setUp(self):
        self.dir = tempfile.TemporaryDirectory()
        self.addCleanup(self.dir.cleanup)

    def path(self, name, payload):
        p = os.path.join(self.dir.name, name)
        with open(p, "w") as f:
            if isinstance(payload, str):
                f.write(payload)
            else:
                json.dump(payload, f)
        return p

    def run_diff(self, argv):
        """Invoke main(); returns (exit_code, stdout, stderr)."""
        out, err = io.StringIO(), io.StringIO()
        with contextlib.redirect_stdout(out), \
                contextlib.redirect_stderr(err):
            try:
                code = diff_report.main(argv)
            except SystemExit as e:  # sys.exit(2) paths
                code = e.code
        return code, out.getvalue(), err.getvalue()

    def test_identical_files_match(self):
        a = self.path("a.json", {"bench": "x", "v": 1.5})
        b = self.path("b.json", {"bench": "x", "v": 1.5})
        code, out, _ = self.run_diff([a, b])
        self.assertEqual(code, 0)
        self.assertIn("matches", out)
        self.assertIn("leaves compared", out)

    def test_missing_file_exits_2(self):
        a = self.path("a.json", {"v": 1})
        missing = os.path.join(self.dir.name, "nope.json")
        code, _, err = self.run_diff([a, missing])
        self.assertEqual(code, 2)
        self.assertIn("cannot load", err)

    def test_malformed_json_exits_2(self):
        a = self.path("a.json", "{not json")
        b = self.path("b.json", {"v": 1})
        code, _, err = self.run_diff([a, b])
        self.assertEqual(code, 2)
        self.assertIn("cannot load", err)

    def test_out_of_tolerance_exits_1(self):
        a = self.path("a.json", {"v": 1.0})
        b = self.path("b.json", {"v": 1.1})
        code, out, _ = self.run_diff([a, b, "--rtol", "1e-3"])
        self.assertEqual(code, 1)
        self.assertIn("mismatch at v", out)

    def test_within_tolerance_matches(self):
        a = self.path("a.json", {"v": 1.0000001})
        b = self.path("b.json", {"v": 1.0})
        code, _, _ = self.run_diff([a, b, "--profile", "golden"])
        self.assertEqual(code, 0)

    def test_golden_profile_keeps_ints_exact(self):
        # rtol 1e-6 would absorb a one-count drift at this magnitude;
        # the golden profile must not.
        a = self.path("a.json", {"warm_starts": 10000001})
        b = self.path("b.json", {"warm_starts": 10000000})
        code, out, _ = self.run_diff([a, b, "--profile", "golden"])
        self.assertEqual(code, 1)
        self.assertIn("warm_starts", out)

    def test_golden_profile_ignores_histogram_buckets(self):
        a = self.path("a.json", {"stats": {"histograms": {
            "h": {"count": 5, "buckets": [{"le": 1.0, "count": 5}]}}}})
        b = self.path("b.json", {"stats": {"histograms": {
            "h": {"count": 5, "buckets": [{"le": 1.0, "count": 4},
                                          {"le": 2.0, "count": 1}]}}}})
        code, _, _ = self.run_diff([a, b, "--profile", "golden"])
        self.assertEqual(code, 0)

    def test_unknown_key_reported(self):
        a = self.path("a.json", {"v": 1, "surprise": 2})
        b = self.path("b.json", {"v": 1})
        code, out, _ = self.run_diff([a, b])
        self.assertEqual(code, 1)
        self.assertIn("surprise", out)
        self.assertIn("missing in golden", out)

    def test_missing_key_reported(self):
        a = self.path("a.json", {"v": 1})
        b = self.path("b.json", {"v": 1, "gone": 2})
        code, out, _ = self.run_diff([a, b])
        self.assertEqual(code, 1)
        self.assertIn("missing in actual", out)

    def test_null_vs_number_is_type_mismatch(self):
        # JsonWriter maps NaN/inf to null; a metric degenerating to
        # null must fail the diff, not silently pass.
        a = self.path("a.json", {"v": None})
        b = self.path("b.json", {"v": 0.5})
        code, out, _ = self.run_diff([a, b, "--profile", "golden"])
        self.assertEqual(code, 1)
        self.assertIn("type", out)

    def test_null_matches_null(self):
        a = self.path("a.json", {"v": None})
        b = self.path("b.json", {"v": None})
        code, _, _ = self.run_diff([a, b])
        self.assertEqual(code, 0)

    def test_length_mismatch(self):
        a = self.path("a.json", {"runs": [1, 2, 3]})
        b = self.path("b.json", {"runs": [1, 2]})
        code, out, _ = self.run_diff([a, b])
        self.assertEqual(code, 1)
        self.assertIn("length 3 != 2", out)

    def test_bad_tol_spec_exits_2(self):
        a = self.path("a.json", {"v": 1})
        b = self.path("b.json", {"v": 1})
        code, _, err = self.run_diff([a, b, "--tol", "no-equals"])
        self.assertEqual(code, 2)
        self.assertIn("--tol expects", err)

    def test_cli_tol_outranks_profile(self):
        a = self.path("a.json", {"v": 2.0})
        b = self.path("b.json", {"v": 1.0})
        code, _, _ = self.run_diff(
            [a, b, "--profile", "golden", "--tol", "v=2.0"])
        self.assertEqual(code, 0)

    def test_update_overwrites_golden(self):
        a = self.path("a.json", {"v": 2})
        b = self.path("b.json", {"v": 1})
        code, out, _ = self.run_diff([a, b, "--update"])
        self.assertEqual(code, 0)
        self.assertIn("updated", out)
        with open(b) as f:
            self.assertEqual(json.load(f), {"v": 2})

    def test_update_rejects_malformed_actual(self):
        a = self.path("a.json", "{broken")
        b = self.path("b.json", {"v": 1})
        code, _, err = self.run_diff([a, b, "--update"])
        self.assertEqual(code, 2)
        self.assertIn("cannot load", err)
        with open(b) as f:  # golden untouched
            self.assertEqual(json.load(f), {"v": 1})

    def _interval_report(self):
        """A report shaped like the interval-flow schema runs emit."""
        return {
            "bench": "fig_obs_overhead",
            "runs": [{
                "name": "SitW",
                "trace_events_emitted": 9000,
                "intervals": [
                    {"end_s": 600.0, "invocations": 1200,
                     "cold_starts": 40, "warm_starts": 1100,
                     "evictions": 7, "prewarms": 3,
                     "failed_attempts": 0, "spend_usd": 0.125,
                     "wait_queue": 0},
                    {"end_s": 1200.0, "invocations": 1180,
                     "cold_starts": 12, "warm_starts": 1150,
                     "evictions": 2, "prewarms": 1,
                     "failed_attempts": 1, "spend_usd": 0.110,
                     "wait_queue": 3},
                ],
            }],
        }

    def test_interval_series_round_trips(self):
        report = self._interval_report()
        a = self.path("a.json", report)
        b = self.path("b.json", json.loads(json.dumps(report)))
        code, out, _ = self.run_diff([a, b, "--profile", "golden"])
        self.assertEqual(code, 0)
        self.assertIn("matches", out)

    def test_interval_count_drift_fails_golden(self):
        # The series is part of the deterministic artifact: a
        # one-count drift in any interval must fail, ints stay exact.
        actual = self._interval_report()
        golden = self._interval_report()
        golden["runs"][0]["intervals"][1]["cold_starts"] = 13
        a = self.path("a.json", actual)
        b = self.path("b.json", golden)
        code, out, _ = self.run_diff([a, b, "--profile", "golden"])
        self.assertEqual(code, 1)
        self.assertIn("intervals.1", out)
        self.assertIn("cold_starts", out)

    def test_interval_presence_is_part_of_schema(self):
        # `intervals` is written only when the run recorded a series;
        # one side having it and the other not is a real mismatch.
        actual = self._interval_report()
        golden = self._interval_report()
        del golden["runs"][0]["intervals"]
        a = self.path("a.json", actual)
        b = self.path("b.json", golden)
        code, out, _ = self.run_diff([a, b, "--profile", "golden"])
        self.assertEqual(code, 1)
        self.assertIn("intervals", out)
        self.assertIn("missing in golden", out)

    def test_summary_written_on_mismatch(self):
        a = self.path("a.json", {"v": 2.0, "n": "x"})
        b = self.path("b.json", {"v": 1.0, "n": "y"})
        summary_path = os.path.join(self.dir.name, "summary.json")
        code, _, _ = self.run_diff([a, b, "--summary", summary_path])
        self.assertEqual(code, 1)
        with open(summary_path) as f:
            summary = json.load(f)
        self.assertFalse(summary["match"])
        self.assertEqual(summary["compared_leaves"], 2)
        kinds = {m["path"]: m["kind"] for m in summary["mismatches"]}
        self.assertEqual(kinds, {"v": "value", "n": "value"})

    def test_summary_written_on_match(self):
        a = self.path("a.json", {"v": 1.0})
        b = self.path("b.json", {"v": 1.0})
        summary_path = os.path.join(self.dir.name, "summary.json")
        code, _, _ = self.run_diff([a, b, "--summary", summary_path])
        self.assertEqual(code, 0)
        with open(summary_path) as f:
            summary = json.load(f)
        self.assertTrue(summary["match"])
        self.assertEqual(summary["mismatches"], [])


if __name__ == "__main__":
    unittest.main()
